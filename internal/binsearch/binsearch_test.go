package binsearch

import (
	"sort"
	"testing"
	"testing/quick"

	"cssidx/internal/workload"
)

func refLowerBound(a []uint32, key uint32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= key })
}

func refUpperBound(a []uint32, key uint32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] > key })
}

func toU32(raw []uint16) []uint32 {
	a := make([]uint32, len(raw))
	for i, v := range raw {
		a[i] = uint32(v)
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	return a
}

func TestSearchBasic(t *testing.T) {
	a := []uint32{2, 4, 4, 4, 9, 11, 30}
	cases := []struct {
		key  uint32
		want int
	}{
		{2, 0}, {4, 1}, {9, 4}, {11, 5}, {30, 6},
		{1, -1}, {3, -1}, {10, -1}, {31, -1},
	}
	for _, c := range cases {
		if got := Search(a, c.key); got != c.want {
			t.Errorf("Search(%d)=%d, want %d", c.key, got, c.want)
		}
	}
}

func TestSearchEmptyAndSingle(t *testing.T) {
	if got := Search(nil, 5); got != -1 {
		t.Errorf("empty: got %d", got)
	}
	if got := Search([]uint32{7}, 7); got != 0 {
		t.Errorf("single hit: got %d", got)
	}
	if got := Search([]uint32{7}, 8); got != -1 {
		t.Errorf("single miss: got %d", got)
	}
}

func TestLowerBoundMatchesSortSearch(t *testing.T) {
	f := func(raw []uint16, key uint16) bool {
		a := toU32(raw)
		return LowerBound(a, uint32(key)) == refLowerBound(a, uint32(key))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUpperBoundMatchesSortSearch(t *testing.T) {
	f := func(raw []uint16, key uint16) bool {
		a := toU32(raw)
		return UpperBound(a, uint32(key)) == refUpperBound(a, uint32(key))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEqualRange(t *testing.T) {
	a := []uint32{1, 3, 3, 3, 5, 5, 8}
	cases := []struct {
		key         uint32
		first, last int
	}{
		{1, 0, 1}, {3, 1, 4}, {5, 4, 6}, {8, 6, 7},
		{0, 0, 0}, {2, 1, 1}, {4, 4, 4}, {9, 7, 7},
	}
	for _, c := range cases {
		f, l := EqualRange(a, c.key)
		if f != c.first || l != c.last {
			t.Errorf("EqualRange(%d)=(%d,%d), want (%d,%d)", c.key, f, l, c.first, c.last)
		}
	}
}

func TestSearchFindsLeftmostDuplicate(t *testing.T) {
	g := workload.New(11)
	a := g.SortedWithDuplicates(5000, 6)
	for _, key := range g.Lookups(a, 2000) {
		got := Search(a, key)
		want := refLowerBound(a, key)
		if got != want {
			t.Fatalf("Search(%d)=%d, want leftmost %d", key, got, want)
		}
	}
}

func TestSearchGenericAgrees(t *testing.T) {
	g := workload.New(12)
	a := g.SortedWithDuplicates(3000, 3)
	probes := append(g.Lookups(a, 1000), g.Misses(a, 1000)...)
	for _, key := range probes {
		if got, want := SearchGeneric(a, key), Search(a, key); got != want {
			t.Fatalf("SearchGeneric(%d)=%d, Search=%d", key, got, want)
		}
	}
}

func TestSearchLargeRandom(t *testing.T) {
	g := workload.New(13)
	a := g.SortedDistinct(100000)
	for i, key := range g.Lookups(a, 5000) {
		got := Search(a, key)
		if got < 0 || a[got] != key {
			t.Fatalf("probe %d: Search(%d)=%d", i, key, got)
		}
	}
	for _, key := range g.Misses(a, 5000) {
		if got := Search(a, key); got != -1 {
			t.Fatalf("miss key %d found at %d", key, got)
		}
	}
}

func TestNodeLowerBoundSpecialisedSizes(t *testing.T) {
	g := workload.New(14)
	for _, m := range []int{3, 4, 7, 8, 15, 16, 31, 32, 63, 64} {
		keys := g.SortedDistinct(m)
		// Probe every key, every predecessor, and the extremes.
		probes := make([]uint32, 0, 2*m+2)
		for _, k := range keys {
			probes = append(probes, k)
			if k > 0 {
				probes = append(probes, k-1)
			}
		}
		probes = append(probes, 0, ^uint32(0))
		for _, p := range probes {
			got := NodeLowerBound(keys, m, p)
			want := refLowerBound(keys, p)
			if got != want {
				t.Fatalf("m=%d NodeLowerBound(%d)=%d, want %d (keys=%v)", m, p, got, want, keys)
			}
		}
	}
}

func TestNodeLowerBoundWithDuplicates(t *testing.T) {
	// Duplicate keys inside a node happen when a CSS-tree pads dangling
	// slots (§4.1.1); the search must still return the leftmost slot.
	for _, m := range []int{4, 8, 16, 32, 64} {
		keys := make([]uint32, m)
		for i := range keys {
			if i < m/2 {
				keys[i] = 10
			} else {
				keys[i] = 20
			}
		}
		if got := NodeLowerBound(keys, m, 10); got != 0 {
			t.Errorf("m=%d: leftmost dup of 10 = %d, want 0", m, got)
		}
		if got := NodeLowerBound(keys, m, 20); got != m/2 {
			t.Errorf("m=%d: leftmost dup of 20 = %d, want %d", m, got, m/2)
		}
		if got := NodeLowerBound(keys, m, 21); got != m {
			t.Errorf("m=%d: beyond max = %d, want %d", m, got, m)
		}
	}
}

func TestNodeLowerBoundGenericArbitraryM(t *testing.T) {
	g := workload.New(15)
	for _, m := range []int{1, 2, 3, 5, 6, 7, 12, 24, 48, 100, 128} {
		keys := g.SortedDistinct(m)
		for _, p := range append(g.Lookups(keys, 50), 0, ^uint32(0)) {
			got := NodeLowerBound(keys, m, p)
			want := refLowerBound(keys, p)
			if got != want {
				t.Fatalf("m=%d NodeLowerBound(%d)=%d, want %d", m, p, got, want)
			}
		}
	}
}

func TestNodeLowerBoundPropertyQuick(t *testing.T) {
	f := func(raw [16]uint16, key uint16) bool {
		a := make([]uint32, 16)
		for i, v := range raw {
			a[i] = uint32(v)
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		return NodeLowerBound(a, 16, uint32(key)) == refLowerBound(a, uint32(key))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestBoundsOnAllEqual(t *testing.T) {
	a := []uint32{5, 5, 5, 5, 5, 5, 5, 5}
	if got := LowerBound(a, 5); got != 0 {
		t.Errorf("LowerBound=%d, want 0", got)
	}
	if got := UpperBound(a, 5); got != 8 {
		t.Errorf("UpperBound=%d, want 8", got)
	}
	if got := LowerBound(a, 6); got != 8 {
		t.Errorf("LowerBound(6)=%d, want 8", got)
	}
	if got := UpperBound(a, 4); got != 0 {
		t.Errorf("UpperBound(4)=%d, want 0", got)
	}
}

func TestBoundaryKeys(t *testing.T) {
	a := []uint32{0, 1, ^uint32(0) - 1, ^uint32(0)}
	if got := Search(a, 0); got != 0 {
		t.Errorf("Search(0)=%d", got)
	}
	if got := Search(a, ^uint32(0)); got != 3 {
		t.Errorf("Search(max)=%d", got)
	}
	if got := LowerBound(a, ^uint32(0)); got != 3 {
		t.Errorf("LowerBound(max)=%d", got)
	}
}
