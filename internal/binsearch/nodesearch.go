package binsearch

// Node-search kernel dispatch.  Once the cache line holding a node is
// resident, the probe's cost is the within-node search itself — "Fast Query
// Processing by Distributing an Index over CPU Caches" makes the point that
// with a cache-optimal layout the probe loop, not the miss count, becomes
// the bottleneck.  Three kernel tiers answer the same leftmost-≥ question:
//
//	scalar  the bflb* branch-free ALU ladders (PR 3): one borrow-bit compare
//	        per halving step, a serial dependency chain of ~log₂ m steps.
//	swar    word-parallel borrow-bit counting: slot pairs are packed into
//	        uint64 words and compared lane-wise with the carry-isolation
//	        trick (two uint32 compares per uint64 subtraction); because the
//	        node is sorted, the lower bound is simply the count of slots
//	        below the key, so the per-pair counts sum associatively — the
//	        kernel is a short independent-op reduction instead of a serial
//	        chain, and an out-of-order core overlaps all of it.  Pure Go,
//	        portable everywhere.
//	simd    AVX2 assembly (amd64): unsigned compares answer 8 slots per
//	        instruction against the broadcast key, VPMOVMSKB extracts the
//	        compare mask, POPCNT counts it — a 16-slot node is answered in
//	        ~3 vector instructions.  arm64 NEON is a follow-on; without a
//	        vector unit the dispatch defaults to the scalar ladder (swar
//	        is an explicit opt-in: it trails the ladder on hot nodes).
//
// The tier is selected once at package init from CPU feature detection
// (hand-rolled CPUID, no external deps) and can be overridden with
// CSSIDX_NODESEARCH=scalar|swar|simd for testing and ablation.  Every tier
// is bit-identical to NodeLowerBoundScalar on every sorted window — the
// differential battery in nodesearch_test.go proves it exhaustively.

import "os"

// Kernel identifies a node-search dispatch tier.
type Kernel uint8

const (
	// KernelScalar is the branch-free ALU ladder family (bflb*), the PR 3
	// baseline the other tiers are measured against.
	KernelScalar Kernel = iota
	// KernelSWAR is the word-parallel borrow-bit counting kernel (pure Go).
	KernelSWAR
	// KernelSIMD is the AVX2 assembly kernel (amd64 with AVX2 only).
	KernelSIMD
)

// String names the tier the way CSSIDX_NODESEARCH spells it.
func (k Kernel) String() string {
	switch k {
	case KernelScalar:
		return "scalar"
	case KernelSWAR:
		return "swar"
	case KernelSIMD:
		return "simd"
	default:
		return "Kernel(?)"
	}
}

// ParseKernel maps a CSSIDX_NODESEARCH value to its tier.
func ParseKernel(name string) (Kernel, bool) {
	switch name {
	case "scalar":
		return KernelScalar, true
	case "swar":
		return KernelSWAR, true
	case "simd":
		return KernelSIMD, true
	}
	return 0, false
}

// EnvKernel is the environment variable that overrides the dispatched tier.
const EnvKernel = "CSSIDX_NODESEARCH"

// defaultKernel is the tier feature detection (plus the env override)
// picked at init; activeKernel is the live dispatch table every
// NodeLowerBound call routes through — written once at init (or by
// SetKernel in tests and ablations), so the switch on it predicts
// perfectly in hot loops.
var (
	defaultKernel = detectKernel()
	activeKernel  = defaultKernel
)

// kernelEnvValue returns the raw CSSIDX_NODESEARCH value (for tests).
func kernelEnvValue() string { return os.Getenv(EnvKernel) }

// detectKernel picks the fastest available tier, honouring the env override.
// An override naming an unavailable tier (simd on a non-AVX2 host) degrades
// to the best portable tier rather than failing, so one CI matrix works on
// any runner.
func detectKernel() Kernel {
	if name := os.Getenv(EnvKernel); name != "" {
		if k, ok := ParseKernel(name); ok && KernelAvailable(k) {
			return k
		}
	}
	if simdAvailable {
		return KernelSIMD
	}
	// Without a vector unit the bflb ladder wins on hot nodes (measured:
	// the SWAR reduction retires more µops than the short serial chain
	// costs in latency), so swar stays an explicit opt-in tier.
	return KernelScalar
}

// KernelAvailable reports whether the tier can run on this CPU.
func KernelAvailable(k Kernel) bool {
	return k != KernelSIMD || simdAvailable
}

// ActiveKernel returns the tier NodeLowerBound currently dispatches to.
func ActiveKernel() Kernel { return activeKernel }

// SetKernel switches the dispatched tier and reports whether the tier is
// available (false leaves the dispatch unchanged).  It is NOT synchronised
// with concurrent searches — call it from tests, benchmarks and ablation
// setup only, never while an index is serving.
func SetKernel(k Kernel) bool {
	if !KernelAvailable(k) {
		return false
	}
	activeKernel = k
	return true
}

// nodeLowerBoundDispatch answers the leftmost-≥ search through the active
// tier.  Split from NodeLowerBound so the wrapper stays inlinable.  The two
// cache-line node sizes (16 full / 15 level routing keys) are every uint32
// tree's per-level hot case, so the SIMD arm jumps straight into their asm
// kernels without the extra frame of the general m switch.
func nodeLowerBoundDispatch(a []uint32, m int, key uint32) int {
	switch activeKernel {
	case KernelSIMD:
		switch m {
		case 16:
			_ = a[15]
			return int(simdLB16(&a[0], key))
		case 15:
			_ = a[14]
			return int(simdLB15(&a[0], key))
		}
		return nodeLowerBoundSIMD(a, m, key)
	case KernelSWAR:
		return nodeLowerBoundSWAR(a, m, key)
	default:
		return nodeLowerBoundScalarTier(a, m, key)
	}
}

// nodeLowerBoundScalarTier is the scalar tier body: the bflb* ladders.
func nodeLowerBoundScalarTier(a []uint32, m int, key uint32) int {
	switch m {
	case 3:
		return bflb3(a, key)
	case 4:
		return bflb4(a, key)
	case 7:
		return bflb7(a, key)
	case 8:
		return bflb8(a, key)
	case 15:
		return bflb15(a, key)
	case 16:
		return bflb16(a, key)
	case 31:
		return bflb31(a, key)
	case 32:
		return bflb32(a, key)
	case 63:
		return bflb63(a, key)
	case 64:
		return bflb64(a, key)
	default:
		return nodeLowerBoundBF(a, m, key)
	}
}

// --- multi-probe kernel ------------------------------------------------------

// GroupWidth is the lockstep group width the multi-probe kernel answers at
// once; it matches the batch kernels of internal/csstree.
const GroupWidth = 16

// GroupOnOneNode reports whether a lockstep group's probes all sit on the
// same node — true on the root pass for every group, and common on upper
// levels under the key-ordered schedule, where neighbouring probes walk
// neighbouring paths.  The OR-fold is branch-free: ~1 ALU op per member,
// cheap against the GroupWidth node searches NodeLowerBound16 can collapse.
func GroupOnOneNode(nodes *[GroupWidth]int32) bool {
	acc := int32(0)
	for _, d := range nodes {
		acc |= d ^ nodes[0]
	}
	return acc == 0
}

// NodeLowerBound16 answers GroupWidth probes against ONE node of m sorted
// slots: out[j] receives the leftmost index in a[:m] with a[i] >= probes[j],
// for every j.  probes and out must hold at least GroupWidth entries.
//
// When a lockstep group's probes all sit on the same node — always true at
// the root, and common on upper levels under the key-ordered schedule — the
// group's 16 independent node searches collapse into one call.  The SIMD
// tier answers it from registers: the probes are loaded once into two
// vectors and each node slot is broadcast and compared against the whole
// group, so the node is read m times total instead of 16·m, with no
// per-probe call overhead.  Other tiers loop the single-probe kernel; the
// results are bit-identical in every tier.
func NodeLowerBound16(a []uint32, m int, probes []uint32, out []int32) {
	if activeKernel == KernelSIMD && m >= 1 {
		simdLBMulti16(&a[0], int64(m), &probes[0], &out[0])
		return
	}
	for j := 0; j < GroupWidth; j++ {
		out[j] = int32(NodeLowerBound(a, m, probes[j]))
	}
}
