//go:build !amd64

package binsearch

// Non-amd64 builds have no vector kernel yet (arm64 NEON is the planned
// follow-on): the SIMD tier is unavailable and the dispatch defaults to
// the scalar branch-free ladder (swar stays an explicit opt-in tier).

const simdAvailable = false

// nodeLowerBoundSIMD is never reachable when simdAvailable is false; it
// exists so the dispatch switch compiles on every architecture.
func nodeLowerBoundSIMD(a []uint32, m int, key uint32) int {
	return nodeLowerBoundSWAR(a, m, key)
}

// The asm kernels referenced by the (unreachable) SIMD dispatch arms.
func simdLB15(p *uint32, key uint32) int64 {
	panic("binsearch: simd kernel on non-amd64 build")
}

func simdLB16(p *uint32, key uint32) int64 {
	panic("binsearch: simd kernel on non-amd64 build")
}

// simdLBMulti16 is unreachable on this architecture (see NodeLowerBound16).
func simdLBMulti16(node *uint32, m int64, probes *uint32, out *int32) {
	panic("binsearch: simd kernel on non-amd64 build")
}
