// AVX2 node-search kernels.  A node is a short sorted window of uint32
// keys; the leftmost slot ≥ the probe equals the COUNT of slots < the
// probe, so each kernel compares the whole window against the broadcast
// key (8 slots per compare), extracts the compare mask (VPMOVMSKB, 4 mask
// bits per slot) and popcounts it — a 16-slot node is answered by two
// compares, two mask extracts and one POPCNT.
//
// AVX2 has no unsigned compare, so ≥ is computed as max(slot, key) == slot
// (VPMAXUD + VPCMPEQD, both taking the slots straight from memory): the
// popcount then counts slots ≥ key and the kernel returns m − count.  This
// saves the broadcast-bias XORs a signed-compare formulation needs.
//
// The 2ᵗ−1 sizes (7/15/31/63 — level CSS-tree routing windows) are not a
// whole number of vectors; rather than masked loads, the last vector is
// loaded OVERLAPPED with the previous one (always inside the window) and
// the one double-counted lane is subtracted back off via its mask bit.
//
// Two hygiene rules keep the kernels fast on every core: only VEX-encoded
// instructions touch vector registers (a legacy-SSE write with dirty YMM
// uppers stalls for hundreds of cycles on state merges), and every kernel
// ends with VZEROUPPER so the Go code after the return pays no AVX/SSE
// transition penalty.

#include "textflag.h"

// KEYVEC loads p into AX and broadcasts the probe key into Y0 (X0 for the
// XMM kernels).
#define KEYVEC \
	MOVQ p+0(FP), AX; \
	MOVL key+8(FP), CX; \
	VMOVQ CX, X0; \
	VPBROADCASTD X0, Y0

// MASKGE8 leaves in reg the 32-bit mask of slots ≥ key among the 8 slots
// at off(AX): yv = max(slot, key); lane equals slot exactly when slot ≥ key.
#define MASKGE8(off, yv, reg) \
	VPMAXUD off(AX), Y0, yv; \
	VPCMPEQD off(AX), yv, yv; \
	VPMOVMSKB yv, reg

// func simdLB8(p *uint32, key uint32) int64
TEXT ·simdLB8(SB), NOSPLIT, $0-24
	KEYVEC
	MASKGE8(0, Y2, BX)
	POPCNTL BX, BX
	SHRL $2, BX
	MOVL $8, DX
	SUBQ BX, DX
	MOVQ DX, ret+16(FP)
	VZEROUPPER
	RET

// func simdLB16(p *uint32, key uint32) int64
TEXT ·simdLB16(SB), NOSPLIT, $0-24
	KEYVEC
	MASKGE8(0, Y2, BX)
	MASKGE8(32, Y3, SI)
	SHLQ $32, SI
	ORQ SI, BX
	POPCNTQ BX, BX
	SHRQ $2, BX
	MOVL $16, DX
	SUBQ BX, DX
	MOVQ DX, ret+16(FP)
	VZEROUPPER
	RET

// func simdLB32(p *uint32, key uint32) int64
TEXT ·simdLB32(SB), NOSPLIT, $0-24
	KEYVEC
	MASKGE8(0, Y2, BX)
	MASKGE8(32, Y3, SI)
	MASKGE8(64, Y4, DI)
	MASKGE8(96, Y5, R8)
	SHLQ $32, SI
	ORQ SI, BX
	POPCNTQ BX, BX
	SHLQ $32, R8
	ORQ R8, DI
	POPCNTQ DI, DI
	ADDQ DI, BX
	SHRQ $2, BX
	MOVL $32, DX
	SUBQ BX, DX
	MOVQ DX, ret+16(FP)
	VZEROUPPER
	RET

// func simdLB64(p *uint32, key uint32) int64
TEXT ·simdLB64(SB), NOSPLIT, $0-24
	KEYVEC
	MASKGE8(0, Y2, BX)
	MASKGE8(32, Y3, SI)
	MASKGE8(64, Y4, DI)
	MASKGE8(96, Y5, R8)
	MASKGE8(128, Y2, R9)
	MASKGE8(160, Y3, R10)
	MASKGE8(192, Y4, R11)
	MASKGE8(224, Y5, R12)
	SHLQ $32, SI
	ORQ SI, BX
	POPCNTQ BX, BX
	SHLQ $32, R8
	ORQ R8, DI
	POPCNTQ DI, DI
	ADDQ DI, BX
	SHLQ $32, R10
	ORQ R10, R9
	POPCNTQ R9, R9
	ADDQ R9, BX
	SHLQ $32, R12
	ORQ R12, R11
	POPCNTQ R11, R11
	ADDQ R11, BX
	SHRQ $2, BX
	MOVL $64, DX
	SUBQ BX, DX
	MOVQ DX, ret+16(FP)
	VZEROUPPER
	RET

// func simdLB7(p *uint32, key uint32) int64
// Lanes 0-3 at +0 and lanes 3-6 at +12 (overlap: lane 3, bit 12 of m0):
// count_ge = (popcnt(m0|m1<<16) >> 2) − overlap bit; return 7 − count_ge.
TEXT ·simdLB7(SB), NOSPLIT, $0-24
	KEYVEC
	VPMAXUD (AX), X0, X2
	VPCMPEQD (AX), X2, X2
	VPMOVMSKB X2, BX
	VPMAXUD 12(AX), X0, X3
	VPCMPEQD 12(AX), X3, X3
	VPMOVMSKB X3, SI
	MOVL BX, DX
	SHLL $16, SI
	ORL SI, BX
	POPCNTL BX, BX
	SHRL $2, BX
	SHRL $12, DX
	ANDL $1, DX
	SUBL DX, BX
	MOVL $7, DX
	SUBQ BX, DX
	MOVQ DX, ret+16(FP)
	VZEROUPPER
	RET

// func simdLB15(p *uint32, key uint32) int64
// Lanes 0-7 at +0 and lanes 7-14 at +28 (overlap: lane 7, bit 28 of m0).
TEXT ·simdLB15(SB), NOSPLIT, $0-24
	KEYVEC
	MASKGE8(0, Y2, BX)
	MASKGE8(28, Y3, SI)
	MOVL BX, DX
	SHLQ $32, SI
	ORQ SI, BX
	POPCNTQ BX, BX
	SHRQ $2, BX
	SHRL $28, DX
	ANDL $1, DX
	SUBQ DX, BX
	MOVL $15, DX
	SUBQ BX, DX
	MOVQ DX, ret+16(FP)
	VZEROUPPER
	RET

// func simdLB31(p *uint32, key uint32) int64
// Lanes 0-7/8-15/16-23 at +0/+32/+64 and lanes 23-30 at +92 (overlap:
// lane 23 = lane 7 of the third vector, bit 28 of m2).
TEXT ·simdLB31(SB), NOSPLIT, $0-24
	KEYVEC
	MASKGE8(0, Y2, BX)
	MASKGE8(32, Y3, SI)
	MASKGE8(64, Y4, DI)
	MASKGE8(92, Y5, R8)
	MOVL DI, DX
	SHLQ $32, SI
	ORQ SI, BX
	POPCNTQ BX, BX
	SHLQ $32, R8
	ORQ R8, DI
	POPCNTQ DI, DI
	ADDQ DI, BX
	SHRQ $2, BX
	SHRL $28, DX
	ANDL $1, DX
	SUBQ DX, BX
	MOVL $31, DX
	SUBQ BX, DX
	MOVQ DX, ret+16(FP)
	VZEROUPPER
	RET

// func simdLB63(p *uint32, key uint32) int64
// Seven vectors cover lanes 0-55; lanes 55-62 load at +220 (overlap:
// lane 55 = lane 7 of the seventh vector, bit 28 of m6).
TEXT ·simdLB63(SB), NOSPLIT, $0-24
	KEYVEC
	MASKGE8(0, Y2, BX)
	MASKGE8(32, Y3, SI)
	MASKGE8(64, Y4, DI)
	MASKGE8(96, Y5, R8)
	MASKGE8(128, Y2, R9)
	MASKGE8(160, Y3, R10)
	MASKGE8(192, Y4, R11)
	MASKGE8(220, Y5, R12)
	MOVL R11, DX
	SHLQ $32, SI
	ORQ SI, BX
	POPCNTQ BX, BX
	SHLQ $32, R8
	ORQ R8, DI
	POPCNTQ DI, DI
	ADDQ DI, BX
	SHLQ $32, R10
	ORQ R10, R9
	POPCNTQ R9, R9
	ADDQ R9, BX
	SHLQ $32, R12
	ORQ R12, R11
	POPCNTQ R11, R11
	ADDQ R11, BX
	SHRQ $2, BX
	SHRL $28, DX
	ANDL $1, DX
	SUBQ DX, BX
	MOVL $63, DX
	SUBQ BX, DX
	MOVQ DX, ret+16(FP)
	VZEROUPPER
	RET

// func simdCountLT(p *uint32, n8 int64, key uint32) int64
// Counts slots < key over n8 slots (n8 must be a multiple of 8): the
// strip-mined kernel for leaf windows of arbitrary size.
TEXT ·simdCountLT(SB), NOSPLIT, $0-32
	MOVQ p+0(FP), AX
	MOVQ n8+8(FP), CX
	MOVL key+16(FP), DX
	VMOVQ DX, X0
	VPBROADCASTD X0, Y0
	XORQ BX, BX
	MOVQ CX, R8
countloop:
	TESTQ CX, CX
	JZ countdone
	VPMAXUD (AX), Y0, Y2
	VPCMPEQD (AX), Y2, Y2
	VPMOVMSKB Y2, DX
	POPCNTL DX, DX
	ADDQ DX, BX
	ADDQ $32, AX
	SUBQ $8, CX
	JMP countloop
countdone:
	SHRQ $2, BX
	SUBQ BX, R8
	MOVQ R8, ret+24(FP)
	VZEROUPPER
	RET

// func simdLBMulti16(node *uint32, m int64, probes *uint32, out *int32)
// Sixteen probes against ONE node of m sorted slots: the probes are loaded
// once into two vectors, then every node slot is broadcast and compared
// against the whole group, accumulating each probe's count of smaller
// slots — 16 lower bounds in ~3 instructions per slot, all from registers.
// Here the unsigned ≥ trick runs per-lane the other way around: the mask
// accumulated is slot < probe, i.e. max(probe, slot+?) — with no per-lane
// memory operand available the classic sign-bias XOR (VPXOR with
// 0x80000000 lanes) plus signed VPCMPGTD is used instead; the bias setup
// is paid once per call, not per slot.
TEXT ·simdLBMulti16(SB), NOSPLIT, $0-32
	MOVQ node+0(FP), AX
	MOVQ m+8(FP), CX
	MOVQ probes+16(FP), BX
	MOVQ out+24(FP), DX
	MOVL $0x80000000, SI
	VMOVQ SI, X1
	VPBROADCASTD X1, Y1
	VPXOR (BX), Y1, Y2
	VPXOR 32(BX), Y1, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	TESTQ CX, CX
	JZ multidone
multiloop:
	VPBROADCASTD (AX), Y6
	VPXOR Y6, Y1, Y6
	VPCMPGTD Y6, Y2, Y7
	VPSUBD Y7, Y4, Y4
	VPCMPGTD Y6, Y3, Y7
	VPSUBD Y7, Y5, Y5
	ADDQ $4, AX
	DECQ CX
	JNZ multiloop
multidone:
	VMOVDQU Y4, (DX)
	VMOVDQU Y5, 32(DX)
	VZEROUPPER
	RET
