package binsearch

// Differential battery for the node-search dispatch tiers: every available
// kernel (scalar ladder, SWAR, SIMD) must answer bit-identically to the
// branchy NodeLowerBoundScalar oracle on every node size m∈{1..64}, over
// adversarial windows (duplicate-saturated, boundary-value, padded) and
// every distinguishing probe, for both the single-probe and the 16-wide
// multi-probe kernels.  A fuzz target extends the same invariant to
// arbitrary windows.

import (
	"fmt"
	"testing"

	"cssidx/internal/workload"
)

// availableKernels lists the tiers this host can run.
func availableKernels() []Kernel {
	ks := []Kernel{KernelScalar, KernelSWAR}
	if KernelAvailable(KernelSIMD) {
		ks = append(ks, KernelSIMD)
	}
	return ks
}

// withKernel runs fn under each available tier, restoring the default.
func withKernel(t *testing.T, fn func(t *testing.T, k Kernel)) {
	t.Helper()
	prev := ActiveKernel()
	defer SetKernel(prev)
	for _, k := range availableKernels() {
		if !SetKernel(k) {
			t.Fatalf("SetKernel(%v) refused an available kernel", k)
		}
		t.Run(k.String(), func(t *testing.T) { fn(t, k) })
	}
}

func TestKernelParseAndAvailability(t *testing.T) {
	for _, k := range []Kernel{KernelScalar, KernelSWAR, KernelSIMD} {
		got, ok := ParseKernel(k.String())
		if !ok || got != k {
			t.Fatalf("ParseKernel(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseKernel("avx512"); ok {
		t.Fatal("ParseKernel accepted an unknown tier")
	}
	if !KernelAvailable(KernelScalar) || !KernelAvailable(KernelSWAR) {
		t.Fatal("portable tiers must always be available")
	}
	if !KernelAvailable(KernelSIMD) && SetKernel(KernelSIMD) {
		t.Fatal("SetKernel accepted an unavailable kernel")
	}
}

// TestDispatchTiersExhaustive is the acceptance battery: every tier ×
// every node size 1..64 × adversarial windows × every distinguishing probe.
func TestDispatchTiersExhaustive(t *testing.T) {
	withKernel(t, func(t *testing.T, k Kernel) {
		g := workload.New(7)
		for m := 1; m <= 64; m++ {
			for wi, w := range windowsFor(m, g) {
				for _, p := range probesFor(w) {
					want := NodeLowerBoundScalar(w, m, p)
					if ref := refNodeLB(w, m, p); want != ref {
						t.Fatalf("oracle disagrees with linear scan: m=%d window=%d probe=%d", m, wi, p)
					}
					if got := NodeLowerBound(w, m, p); got != want {
						t.Fatalf("%v: m=%d window=%d probe=%d: got %d want %d (window %v)",
							k, m, wi, p, got, want, w)
					}
				}
			}
		}
	})
}

// TestDispatchTiersDuplicateSaturated drives windows that are nothing but
// duplicate runs — the shape of CSS nodes over heavily-skewed columns.
func TestDispatchTiersDuplicateSaturated(t *testing.T) {
	withKernel(t, func(t *testing.T, k Kernel) {
		for m := 1; m <= 64; m++ {
			// Two runs of duplicates split at every possible point,
			// including 0 and m (all-equal windows).
			for split := 0; split <= m; split++ {
				w := make([]uint32, m)
				for i := range w {
					if i < split {
						w[i] = 100
					} else {
						w[i] = 200
					}
				}
				for _, p := range []uint32{0, 99, 100, 101, 199, 200, 201, ^uint32(0)} {
					want := NodeLowerBoundScalar(w, m, p)
					if got := NodeLowerBound(w, m, p); got != want {
						t.Fatalf("%v: m=%d split=%d probe=%d: got %d want %d", k, m, split, p, got, want)
					}
				}
			}
		}
	})
}

// TestNodeLowerBound16AllTiers checks the multi-probe kernel against 16
// independent single-probe answers for every node size and tier.
func TestNodeLowerBound16AllTiers(t *testing.T) {
	withKernel(t, func(t *testing.T, k Kernel) {
		g := workload.New(11)
		for m := 1; m <= 64; m++ {
			for _, w := range windowsFor(m, g) {
				probes := probesFor(w)
				// Pad to a multiple of the group width.
				for len(probes)%GroupWidth != 0 {
					probes = append(probes, probes[0])
				}
				var out [GroupWidth]int32
				for base := 0; base+GroupWidth <= len(probes); base += GroupWidth {
					group := probes[base : base+GroupWidth]
					NodeLowerBound16(w, m, group, out[:])
					for j, p := range group {
						want := NodeLowerBoundScalar(w, m, p)
						if int(out[j]) != want {
							t.Fatalf("%v: m=%d probe=%d slot %d: got %d want %d", k, m, p, j, out[j], want)
						}
					}
				}
			}
		}
	})
}

// TestDefaultKernelIsBestAvailable pins the init-time selection policy.
func TestDefaultKernelIsBestAvailable(t *testing.T) {
	// The test process may have been started with CSSIDX_NODESEARCH set (the
	// CI matrix legs do exactly that); in that case the active kernel must
	// honour it, otherwise it must be the best available tier.
	if name := kernelEnvValue(); name != "" {
		want, ok := ParseKernel(name)
		if ok && KernelAvailable(want) && defaultKernel != want {
			t.Fatalf("env %s=%s but default kernel is %v", EnvKernel, name, defaultKernel)
		}
		return
	}
	want := KernelScalar
	if KernelAvailable(KernelSIMD) {
		want = KernelSIMD
	}
	if defaultKernel != want {
		t.Fatalf("default kernel = %v, want %v", defaultKernel, want)
	}
}

func FuzzNodeLowerBoundTiers(f *testing.F) {
	f.Add(uint32(77), uint32(3), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint32(0), uint32(64), []byte{0, 0, 0, 0, 255, 255, 255, 255})
	f.Add(^uint32(0), uint32(16), []byte{9, 9, 9, 9, 9, 9, 9, 9, 1, 2})
	f.Fuzz(func(t *testing.T, key uint32, seed uint32, raw []byte) {
		// Build a sorted window from the raw bytes (4 bytes per slot,
		// capped at 64 slots), then check every tier.
		m := len(raw) / 4
		if m == 0 {
			return
		}
		if m > 64 {
			m = 64
		}
		w := make([]uint32, m)
		for i := range w {
			w[i] = uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
		}
		// Sort the tiny window.
		for i := 1; i < m; i++ {
			for j := i; j > 0 && w[j-1] > w[j]; j-- {
				w[j-1], w[j] = w[j], w[j-1]
			}
		}
		want := refNodeLB(w, m, key)
		prev := ActiveKernel()
		defer SetKernel(prev)
		for _, k := range availableKernels() {
			SetKernel(k)
			if got := NodeLowerBound(w, m, key); got != want {
				t.Fatalf("%v: m=%d key=%d: got %d want %d (window %v)", k, m, key, got, want, w)
			}
		}
		if got := NodeLowerBoundScalar(w, m, key); got != want {
			t.Fatalf("oracle: m=%d key=%d: got %d want %d", m, key, got, want)
		}
	})
}

// --- per-tier benchmarks ----------------------------------------------------

func benchKernel(b *testing.B, k Kernel, m int) {
	if !KernelAvailable(k) {
		b.Skipf("%v unavailable", k)
	}
	prev := ActiveKernel()
	SetKernel(k)
	defer SetKernel(prev)
	g := workload.New(1)
	keys := g.SortedDistinct(m)
	probes := append(g.Lookups(keys, 4096), g.Misses(keys, 4096)...)
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += NodeLowerBound(keys, m, probes[i&8191])
	}
	sinkNS += s
}

var sinkNS int

func BenchmarkNodeSearchKernels(b *testing.B) {
	for _, m := range []int{7, 8, 15, 16, 31, 32, 63, 64} {
		for _, k := range []Kernel{KernelScalar, KernelSWAR, KernelSIMD} {
			b.Run(fmt.Sprintf("m=%d/%s", m, k), func(b *testing.B) { benchKernel(b, k, m) })
		}
	}
}

func BenchmarkNodeSearchMulti16(b *testing.B) {
	for _, m := range []int{15, 16} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			g := workload.New(1)
			keys := g.SortedDistinct(m)
			probes := g.Lookups(keys, GroupWidth)
			var out [GroupWidth]int32
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				NodeLowerBound16(keys, m, probes, out[:])
			}
			sinkNS += int(out[0])
		})
	}
}
