package binsearch

// AVX2 node-search kernels (see nodesearch_amd64.s) and the hand-rolled CPU
// feature detection that gates them.  No external dependencies: AVX2 needs
// CPUID leaf 7 EBX bit 5, and — because the OS must save the YMM state
// across context switches — CPUID leaf 1 OSXSAVE+AVX plus XGETBV confirming
// XMM and YMM state are enabled.  This is the same probe sequence
// golang.org/x/sys/cpu performs; inlined here so the package stays
// dependency-free.

// simdAvailable reports whether the AVX2 tier can run on this CPU.
var simdAvailable = detectAVX2()

// cpuidAsm and xgetbv0 are implemented in cpu_amd64.s.
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

func detectAVX2() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be OS-enabled.
	if xcr0, _ := xgetbv0(); xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// The single-node kernels answer one probe against a node of exactly the
// named slot count; simdCountLT counts slots < key over any multiple of 8;
// simdLBMulti16 answers 16 probes against one node of m slots.  All read
// exactly the window they are given (the 2ᵗ−1 sizes use overlapped loads
// that stay inside the window), so no padding is required.

//go:noescape
func simdLB7(p *uint32, key uint32) int64

//go:noescape
func simdLB8(p *uint32, key uint32) int64

//go:noescape
func simdLB15(p *uint32, key uint32) int64

//go:noescape
func simdLB16(p *uint32, key uint32) int64

//go:noescape
func simdLB31(p *uint32, key uint32) int64

//go:noescape
func simdLB32(p *uint32, key uint32) int64

//go:noescape
func simdLB63(p *uint32, key uint32) int64

//go:noescape
func simdLB64(p *uint32, key uint32) int64

//go:noescape
func simdCountLT(p *uint32, n8 int64, key uint32) int64

//go:noescape
func simdLBMulti16(node *uint32, m int64, probes *uint32, out *int32)

// nodeLowerBoundSIMD is the SIMD tier body: the specialised vector kernels
// for the node sizes the trees use, the strip-mined count kernel for other
// windows of ≥ 8 slots (leaf remainders), and the SWAR kernel below a
// vector's width.
func nodeLowerBoundSIMD(a []uint32, m int, key uint32) int {
	if m < 8 {
		if m == 7 {
			_ = a[6]
			return int(simdLB7(&a[0], key))
		}
		return nodeLowerBoundSWAR(a, m, key)
	}
	_ = a[m-1]
	switch m {
	case 8:
		return int(simdLB8(&a[0], key))
	case 15:
		return int(simdLB15(&a[0], key))
	case 16:
		return int(simdLB16(&a[0], key))
	case 31:
		return int(simdLB31(&a[0], key))
	case 32:
		return int(simdLB32(&a[0], key))
	case 63:
		return int(simdLB63(&a[0], key))
	case 64:
		return int(simdLB64(&a[0], key))
	default:
		n8 := m &^ 7
		c := int(simdCountLT(&a[0], int64(n8), key))
		for i := n8; i < m; i++ {
			c += ltu(a[i], key)
		}
		return c
	}
}
