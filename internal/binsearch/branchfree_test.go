package binsearch

// Exhaustive differential tests for the branch-free node searches: every
// specialised size and a sweep of arbitrary sizes, driven over adversarial
// windows (boundary keys 0 and MaxUint32, duplicate runs, padded all-equal
// tails) with every distinguishing probe.  The scalar nlb* family is the
// oracle; a linear scan arbitrates both.

import (
	"sort"
	"testing"

	"cssidx/internal/workload"
)

// specialisedSizes are the node sizes with hard-coded routines.
var specialisedSizes = []int{3, 4, 7, 8, 15, 16, 31, 32, 63, 64}

// refNodeLB is the trusted linear-scan lower bound.
func refNodeLB(a []uint32, m int, key uint32) int {
	for i := 0; i < m; i++ {
		if a[i] >= key {
			return i
		}
	}
	return m
}

// probesFor returns every probe that can distinguish behaviours on the
// window: each key, its predecessor and successor, and the extremes.
func probesFor(keys []uint32) []uint32 {
	probes := []uint32{0, 1, ^uint32(0), ^uint32(0) - 1}
	for _, k := range keys {
		probes = append(probes, k)
		if k > 0 {
			probes = append(probes, k-1)
		}
		if k < ^uint32(0) {
			probes = append(probes, k+1)
		}
	}
	return probes
}

// windowsFor builds adversarial sorted windows of exactly m slots.
func windowsFor(m int, g *workload.Gen) [][]uint32 {
	var ws [][]uint32
	add := func(w []uint32) {
		sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
		ws = append(ws, w)
	}
	// Distinct random keys.
	add(g.SortedDistinct(m))
	// All-equal windows at the extremes and in the middle — the shape of a
	// CSS node whose dangling slots were padded with the last real key.
	for _, v := range []uint32{0, 42, ^uint32(0)} {
		w := make([]uint32, m)
		for i := range w {
			w[i] = v
		}
		add(w)
	}
	// Half low, half high (maximal duplicate runs on both sides).
	w := make([]uint32, m)
	for i := range w {
		if i < m/2 {
			w[i] = 7
		} else {
			w[i] = 1000
		}
	}
	add(w)
	// Real prefix, padded tail: first ⌈m/3⌉ distinct, rest replicate the last.
	w = make([]uint32, m)
	real := (m + 2) / 3
	for i := 0; i < real; i++ {
		w[i] = uint32(i * 5)
	}
	for i := real; i < m; i++ {
		w[i] = w[real-1]
	}
	add(w)
	// Boundary-heavy: 0s and MaxUint32s only.
	w = make([]uint32, m)
	for i := range w {
		if i >= m/2 {
			w[i] = ^uint32(0)
		}
	}
	add(w)
	// Consecutive keys (every probe hits or just-misses).
	w = make([]uint32, m)
	for i := range w {
		w[i] = uint32(i)
	}
	add(w)
	return ws
}

// TestBranchFreeMatchesScalarExhaustive proves the branch-free dispatch
// bit-identical to the scalar dispatch (and both to a linear scan) on every
// specialised node size over adversarial windows and probes.
func TestBranchFreeMatchesScalarExhaustive(t *testing.T) {
	g := workload.New(77)
	for _, m := range specialisedSizes {
		for wi, w := range windowsFor(m, g) {
			for _, p := range probesFor(w) {
				want := refNodeLB(w, m, p)
				if got := NodeLowerBoundScalar(w, m, p); got != want {
					t.Fatalf("m=%d window=%d: scalar(%d)=%d, linear scan %d", m, wi, p, got, want)
				}
				if got := NodeLowerBound(w, m, p); got != want {
					t.Fatalf("m=%d window=%d: branch-free(%d)=%d, want %d (window=%v)", m, wi, p, got, want, w)
				}
			}
		}
	}
}

// TestBranchFreeArbitrarySizes sweeps every m from 1 to 96 — covering the
// m−1 routing windows of level nodes, short leaf tails, and sizes with no
// specialised routine — through the same differential harness.
func TestBranchFreeArbitrarySizes(t *testing.T) {
	g := workload.New(78)
	for m := 1; m <= 96; m++ {
		for wi, w := range windowsFor(m, g) {
			for _, p := range probesFor(w) {
				want := refNodeLB(w, m, p)
				if got := NodeLowerBound(w, m, p); got != want {
					t.Fatalf("m=%d window=%d: branch-free(%d)=%d, want %d", m, wi, p, got, want)
				}
				if got := NodeLowerBoundGeneric(w, m, p); got != want {
					t.Fatalf("m=%d window=%d: generic(%d)=%d, want %d", m, wi, p, got, want)
				}
			}
		}
	}
}

// TestBranchFreeEmptyWindow pins the m=0 edge: no slots, lower bound 0.
func TestBranchFreeEmptyWindow(t *testing.T) {
	if got := NodeLowerBound(nil, 0, 5); got != 0 {
		t.Errorf("empty window: got %d, want 0", got)
	}
	if got := nodeLowerBoundBF(nil, 0, 5); got != 0 {
		t.Errorf("empty window (loop): got %d, want 0", got)
	}
}

// TestLtu pins the borrow-bit comparison on its boundary cases.
func TestLtu(t *testing.T) {
	max := ^uint32(0)
	cases := []struct {
		x, key uint32
		want   int
	}{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 0},
		{max, max, 0}, {max - 1, max, 1}, {max, 0, 0}, {0, max, 1},
		{1 << 31, 1<<31 - 1, 0}, {1<<31 - 1, 1 << 31, 1},
	}
	for _, c := range cases {
		if got := ltu(c.x, c.key); got != c.want {
			t.Errorf("ltu(%d, %d)=%d, want %d", c.x, c.key, got, c.want)
		}
	}
}

// --- benchmarks: branch-free vs scalar on uniform random probes -----------

func benchNodeSearch(b *testing.B, m int, f func([]uint32, int, uint32) int) {
	g := workload.New(1)
	keys := g.SortedDistinct(m)
	probes := g.Lookups(keys, 4096)
	// Mix misses in so the branchy path cannot learn the pattern.
	probes = append(probes, g.Misses(keys, 4096)...)
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += f(keys, m, probes[i&8191])
	}
	sinkBench += s
}

var sinkBench int

func BenchmarkNodeLowerBoundBranchFree16(b *testing.B) { benchNodeSearch(b, 16, NodeLowerBound) }
func BenchmarkNodeLowerBoundScalar16(b *testing.B)     { benchNodeSearch(b, 16, NodeLowerBoundScalar) }
func BenchmarkNodeLowerBoundBranchFree32(b *testing.B) { benchNodeSearch(b, 32, NodeLowerBound) }
func BenchmarkNodeLowerBoundScalar32(b *testing.B)     { benchNodeSearch(b, 32, NodeLowerBoundScalar) }
func BenchmarkNodeLowerBoundBranchFree15(b *testing.B) { benchNodeSearch(b, 15, NodeLowerBound) }
func BenchmarkNodeLowerBoundScalar15(b *testing.B)     { benchNodeSearch(b, 15, NodeLowerBoundScalar) }
