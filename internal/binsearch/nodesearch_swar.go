package binsearch

// The SWAR tier: word-parallel lower bound by borrow-bit counting.
//
// Because a node window is sorted, the leftmost slot ≥ key is simply the
// COUNT of slots < key — so instead of the bflb* halving ladder (a serial
// chain of ~log₂ m dependent steps, each waiting on the previous load), the
// kernel compares every slot against the key and sums the borrow bits.  The
// per-slot compares carry no dependences between each other, so the whole
// node search is a flat reduction the out-of-order core runs at its issue
// width.
//
// Two uint32 compares ride on each uint64 ALU op: adjacent slots are packed
// into one 64-bit word and compared lane-wise against the broadcast key
// with the carry-isolation subtraction of Hacker's Delight §2-18 — the high
// bit of each lane is masked so the borrow of the low lane cannot ripple
// into the high lane, then the true per-lane borrow (the unsigned x<y
// predicate, HD §2-12) is reassembled into the lane MSBs and popcounted.
//
// Pure Go, no unsafe, no alignment requirements: this is the portable tier
// every architecture gets, and the fallback the SIMD tier uses for windows
// narrower than a vector.

import "math/bits"

// swarH has the MSB of each 32-bit lane set.
const swarH = 0x8000000080000000

// swarBroadcast replicates key into both lanes.
func swarBroadcast(key uint32) uint64 {
	return uint64(key) * 0x0000_0001_0000_0001
}

// swarLT2 returns the number of lanes of w strictly below the corresponding
// lane of k2 (0, 1 or 2): d is the lane-wise difference w−k2 computed with
// the borrow-isolation trick, and the (¬w&k2)|((¬w|k2)&d) form rebuilds
// each lane's borrow-out — the unsigned less-than predicate — in its MSB.
func swarLT2(w, k2 uint64) int {
	d := ((w | swarH) - (k2 &^ swarH)) ^ ((w ^ ^k2) & swarH)
	return bits.OnesCount64(((^w & k2) | ((^w | k2) & d)) & swarH)
}

// nodeLowerBoundSWAR is the SWAR tier body: leftmost index in a[:m] with
// a[i] >= key, computed as the count of slots below key.  The loop body
// retires four slot-pairs per iteration; all pair counts are independent.
func nodeLowerBoundSWAR(a []uint32, m int, key uint32) int {
	s := a[:m]
	k2 := swarBroadcast(key)
	c := 0
	i := 0
	for ; i+8 <= m; i += 8 {
		p := s[i : i+8 : i+8]
		w0 := uint64(p[0]) | uint64(p[1])<<32
		w1 := uint64(p[2]) | uint64(p[3])<<32
		w2 := uint64(p[4]) | uint64(p[5])<<32
		w3 := uint64(p[6]) | uint64(p[7])<<32
		c += (swarLT2(w0, k2) + swarLT2(w1, k2)) + (swarLT2(w2, k2) + swarLT2(w3, k2))
	}
	for ; i+2 <= m; i += 2 {
		c += swarLT2(uint64(s[i])|uint64(s[i+1])<<32, k2)
	}
	if i < m {
		c += ltu(s[i], key)
	}
	return c
}
