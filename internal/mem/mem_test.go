package mem

import (
	"testing"
	"testing/quick"
	"unsafe"
)

func TestAlignedU32Alignment(t *testing.T) {
	for _, align := range []int{4, 8, 16, 32, 64, 128} {
		for _, n := range []int{1, 2, 5, 15, 16, 17, 1000} {
			s := AlignedU32(n, align)
			if len(s) != n {
				t.Fatalf("AlignedU32(%d,%d): len=%d", n, align, len(s))
			}
			if !IsAligned(unsafe.Pointer(&s[0]), align) {
				t.Errorf("AlignedU32(%d,%d): base %p not aligned", n, align, &s[0])
			}
		}
	}
}

func TestAlignedU32Zeroed(t *testing.T) {
	s := AlignedU32(257, 64)
	for i, v := range s {
		if v != 0 {
			t.Fatalf("element %d not zeroed: %d", i, v)
		}
	}
}

func TestAlignedU32Empty(t *testing.T) {
	s := AlignedU32(0, 64)
	if len(s) != 0 {
		t.Fatalf("want empty slice, got len %d", len(s))
	}
}

func TestAlignedU32CapacityClamped(t *testing.T) {
	// The returned slice must not allow appends to silently reuse padding,
	// which would break alignment assumptions of neighbours.
	s := AlignedU32(8, 64)
	if cap(s) != 8 {
		t.Fatalf("cap=%d, want 8 (three-index slice expression)", cap(s))
	}
}

func TestAlignedU32PanicsOnBadAlign(t *testing.T) {
	for _, align := range []int{0, -8, 3, 6, 48} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("align=%d: expected panic", align)
				}
			}()
			AlignedU32(4, align)
		}()
	}
}

func TestAlignedU32PanicsOnNegativeLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative length")
		}
	}()
	AlignedU32(-1, 64)
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 1, 0}, {1, 1, 1}, {1, 2, 1}, {2, 2, 1}, {3, 2, 2},
		{10, 3, 4}, {9, 3, 3}, {1000000, 16, 62500}, {1000001, 16, 62501},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d)=%d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivProperty(t *testing.T) {
	f := func(a uint16, b uint8) bool {
		bb := int(b) + 1
		q := CeilDiv(int(a), bb)
		return q*bb >= int(a) && (q-1)*bb < int(a) || (a == 0 && q == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {15, 16}, {16, 16}, {17, 32}, {1000, 1024},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d)=%d, want %d", c.in, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d)=false", v)
		}
	}
	for _, v := range []int{0, -1, -2, 3, 5, 6, 7, 1023} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d)=true", v)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := []struct{ in, want int }{{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1 << 20, 20}}
	for _, c := range cases {
		if got := Log2(c.in); got != c.want {
			t.Errorf("Log2(%d)=%d, want %d", c.in, got, c.want)
		}
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KB"},
		{5 << 20, "5.00 MB"},
		{3 << 30, "3.00 GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d)=%q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestSliceBytes(t *testing.T) {
	s := AlignedU32(10, 64)
	if got := SliceBytes(s); got != 40 {
		t.Errorf("SliceBytes=%d, want 40", got)
	}
}
