// Package mem provides the low-level memory facilities the index structures
// share: cache-line constants, aligned slice allocation, and space accounting.
//
// The paper's structures are laid out so that a tree node coincides with a
// cache line.  Go gives no direct control over heap alignment, so AlignedU32
// over-allocates and re-slices to the requested boundary; the result is a
// plain []uint32 whose first element sits on an aligned address.  Because all
// index directories in this repository are pointer-free integer slices, the
// garbage collector never scans their interiors, which keeps lookups free of
// GC interference.
package mem

import (
	"fmt"
	"unsafe"
)

// CacheLine is the default cache-line size in bytes, matching both the
// paper's Ultra Sparc II L2 (64 B) and every mainstream CPU since.
const CacheLine = 64

// KeyBytes is the size of a key (K in the paper's Table 1).
const KeyBytes = 4

// RIDBytes is the size of a record identifier (R in the paper's Table 1).
const RIDBytes = 4

// PtrBytes is the size of a child pointer in pointer-based structures
// (P in the paper's Table 1).  The paper's 1998 machines had 4-byte
// pointers; our arena-backed structures use 4-byte indices, which keeps
// the space formulas of §5.2 exact.
const PtrBytes = 4

// AlignedU32 returns a zeroed []uint32 of length n whose backing array
// starts on an addresses that is a multiple of align bytes.  align must be
// a power of two and a multiple of 4.
func AlignedU32(n, align int) []uint32 {
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	if align%4 != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a multiple of 4", align))
	}
	if n < 0 {
		panic("mem: negative length")
	}
	pad := align / 4
	raw := make([]uint32, n+pad)
	if n == 0 {
		return raw[:0:0]
	}
	off := 0
	for !IsAligned(unsafe.Pointer(&raw[off]), align) {
		off++
	}
	return raw[off : off+n : off+n]
}

// IsAligned reports whether p is a multiple of align bytes.
func IsAligned(p unsafe.Pointer, align int) bool {
	return uintptr(p)%uintptr(align) == 0
}

// SliceBytes returns the size in bytes of the backing store of a []uint32,
// counting capacity (what the allocation actually holds).
func SliceBytes(s []uint32) int {
	return 4 * cap(s)
}

// CeilDiv returns ⌈a/b⌉ for positive b.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic("mem: non-positive divisor")
	}
	return (a + b - 1) / b
}

// NextPow2 returns the smallest power of two ≥ v (v ≥ 1).
func NextPow2(v int) int {
	if v < 1 {
		panic("mem: NextPow2 of non-positive value")
	}
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool {
	return v > 0 && v&(v-1) == 0
}

// Log2 returns ⌊log₂ v⌋ for v ≥ 1.
func Log2(v int) int {
	if v < 1 {
		panic("mem: Log2 of non-positive value")
	}
	l := 0
	for v > 1 {
		v >>= 1
		l++
	}
	return l
}

// Bytes is a human-oriented byte count used in reports.
type Bytes int64

// String formats the byte count the way the paper's figures label axes.
func (b Bytes) String() string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}
