// Package sortu32 provides the sorting substrate the paper's pipeline
// assumes: every index in this repository is built from a sorted key array,
// and the OLAP maintenance cycle (§2.3) re-sorts after batch updates.
//
// The central routine is an LSD radix sort on 4-byte keys — a
// cache-conscious sort in the spirit of the paper's cited work (LaMarca &
// Ladner; AlphaSort): it streams the array sequentially instead of the
// random probing of comparison sorts, making it several times faster than
// sort.Slice for the 4-byte keys of Table 1.  SortPairs co-sorts a RID
// array, which is exactly how mmdb builds record-identifier lists sorted by
// an attribute (§2.2).  Merge combines sorted runs for the batch-update
// path.
package sortu32

// radixBits is the digit width: 4 passes of 8 bits over uint32.
const radixBits = 8

// radixSize is the counting-bucket count per pass.
const radixSize = 1 << radixBits

// insertionThreshold is the size below which insertion sort wins.
const insertionThreshold = 64

// Sort sorts keys ascending in place.
func Sort(keys []uint32) {
	if len(keys) < insertionThreshold {
		insertion(keys)
		return
	}
	tmp := make([]uint32, len(keys))
	src, dst := keys, tmp
	for shift := uint(0); shift < 32; shift += radixBits {
		if sortedBy(src, shift) {
			continue
		}
		countingPass(src, dst, shift)
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// sortedBy reports whether a pass at this shift can be skipped because the
// whole slice is already ordered on the remaining high bits — a common case
// for nearly-sorted batch merges.
func sortedBy(a []uint32, shift uint) bool {
	for i := 1; i < len(a); i++ {
		if a[i]>>shift < a[i-1]>>shift {
			return false
		}
	}
	return true
}

// countingPass distributes src into dst by the byte at shift (stable).
func countingPass(src, dst []uint32, shift uint) {
	var counts [radixSize]int
	for _, k := range src {
		counts[(k>>shift)&(radixSize-1)]++
	}
	pos := 0
	for d := 0; d < radixSize; d++ {
		c := counts[d]
		counts[d] = pos
		pos += c
	}
	for _, k := range src {
		d := (k >> shift) & (radixSize - 1)
		dst[counts[d]] = k
		counts[d]++
	}
}

// insertion sorts a small slice in place.
func insertion(a []uint32) {
	for i := 1; i < len(a); i++ {
		k := a[i]
		j := i - 1
		for j >= 0 && a[j] > k {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = k
	}
}

// SortPairs sorts keys ascending in place, applying the identical stable
// permutation to vals (e.g. RIDs).  len(vals) must equal len(keys).
func SortPairs(keys, vals []uint32) {
	SortPairsScratch(keys, vals, nil, nil)
}

// SortPairsScratch is SortPairs with caller-provided scratch space, for hot
// paths that sort many small batches (the sort-probes-first probe schedule):
// tmpK and tmpV are used as the radix ping-pong buffers when they have
// capacity ≥ len(keys), and allocated otherwise.
func SortPairsScratch(keys, vals, tmpK, tmpV []uint32) {
	if len(keys) != len(vals) {
		panic("sortu32: keys and vals length mismatch")
	}
	n := len(keys)
	if n < insertionThreshold {
		insertionPairs(keys, vals)
		return
	}
	if cap(tmpK) < n || cap(tmpV) < n {
		tmpK = make([]uint32, n)
		tmpV = make([]uint32, n)
	}
	srcK, srcV, dstK, dstV := keys, vals, tmpK[:n], tmpV[:n]
	for shift := uint(0); shift < 32; shift += radixBits {
		if sortedBy(srcK, shift) {
			continue
		}
		var counts [radixSize]int
		for _, k := range srcK {
			counts[(k>>shift)&(radixSize-1)]++
		}
		pos := 0
		for d := 0; d < radixSize; d++ {
			c := counts[d]
			counts[d] = pos
			pos += c
		}
		for i, k := range srcK {
			d := (k >> shift) & (radixSize - 1)
			dstK[counts[d]] = k
			dstV[counts[d]] = srcV[i]
			counts[d]++
		}
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if &srcK[0] != &keys[0] {
		copy(keys, srcK)
		copy(vals, srcV)
	}
}

// insertionPairs is insertion sort carrying vals along (stable).
func insertionPairs(keys, vals []uint32) {
	for i := 1; i < len(keys); i++ {
		k, v := keys[i], vals[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1], vals[j+1] = keys[j], vals[j]
			j--
		}
		keys[j+1], vals[j+1] = k, v
	}
}

// Merge merges two ascending slices into a new ascending slice (stable:
// ties take from a first) — the batch-update path: sorted base plus sorted
// batch.
func Merge(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// IsSorted reports whether a is non-decreasing.
func IsSorted(a []uint32) bool {
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			return false
		}
	}
	return true
}
