package sortu32

// SortPairsParallel must be bit-identical to the sequential stable sort —
// same key order AND same permutation of vals — on every distribution that
// stresses the partition: uniform, heavily duplicated (Zipf-like), keys
// varying only in low bytes (partition-byte selection), already sorted,
// reversed, and all-equal.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"cssidx/internal/parallel"
)

func genDist(name string, n int, rng *rand.Rand) []uint32 {
	keys := make([]uint32, n)
	switch name {
	case "uniform":
		for i := range keys {
			keys[i] = rng.Uint32()
		}
	case "dup-heavy":
		for i := range keys {
			keys[i] = uint32(rng.Intn(37)) * 1000003
		}
	case "low-bytes-only":
		for i := range keys {
			keys[i] = uint32(rng.Intn(4096)) // varies only in the low 12 bits
		}
	case "one-byte-band":
		for i := range keys {
			keys[i] = 0x7f000000 | uint32(rng.Intn(1<<16)) // high byte constant
		}
	case "sorted":
		cur := uint32(0)
		for i := range keys {
			cur += uint32(rng.Intn(5))
			keys[i] = cur
		}
	case "reversed":
		cur := ^uint32(0)
		for i := range keys {
			keys[i] = cur
			cur -= uint32(rng.Intn(5))
		}
	case "all-equal":
		for i := range keys {
			keys[i] = 42
		}
	}
	return keys
}

var distNames = []string{"uniform", "dup-heavy", "low-bytes-only", "one-byte-band", "sorted", "reversed", "all-equal"}

// raiseGOMAXPROCS makes the partition path reachable on single-CPU hosts
// (SortPairsParallel falls back to sequential when workers exceed
// GOMAXPROCS, which would leave the parallel code untested there).
func raiseGOMAXPROCS(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(0)
	if prev < 8 {
		runtime.GOMAXPROCS(8)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
}

func TestSortPairsParallelMatchesSequential(t *testing.T) {
	raiseGOMAXPROCS(t)
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{0, 1, 100, 1 << 15, 1<<15 + 3, 200001} {
		for _, dist := range distNames {
			keys := genDist(dist, n, rng)
			vals := make([]uint32, n)
			for i := range vals {
				vals[i] = uint32(i)
			}
			wantK := append([]uint32(nil), keys...)
			wantV := append([]uint32(nil), vals...)
			SortPairs(wantK, wantV)

			for _, workers := range []int{1, 2, 3, 8} {
				gotK := append([]uint32(nil), keys...)
				gotV := append([]uint32(nil), vals...)
				opts := parallel.Options{Workers: workers, MinBatchPerWorker: 1024}
				hist := make([]int32, HistLen(n, opts))
				SortPairsParallel(gotK, gotV, nil, nil, hist, opts)
				for i := range wantK {
					if gotK[i] != wantK[i] || gotV[i] != wantV[i] {
						t.Fatalf("%s n=%d workers=%d: [%d] got (%d,%d) want (%d,%d)",
							dist, n, workers, i, gotK[i], gotV[i], wantK[i], wantV[i])
					}
				}
			}
		}
	}
}

func TestSortPairsParallelScratchReuse(t *testing.T) {
	raiseGOMAXPROCS(t)
	rng := rand.New(rand.NewSource(7))
	n := 1 << 16
	opts := parallel.Options{Workers: 4, MinBatchPerWorker: 1024}
	tmpK := make([]uint32, n)
	tmpV := make([]uint32, n)
	hist := make([]int32, HistLen(n, opts))
	for round := 0; round < 3; round++ {
		keys := genDist("dup-heavy", n, rng)
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = uint32(i)
		}
		wantK := append([]uint32(nil), keys...)
		wantV := append([]uint32(nil), vals...)
		SortPairs(wantK, wantV)
		SortPairsParallel(keys, vals, tmpK, tmpV, hist, opts)
		for i := range wantK {
			if keys[i] != wantK[i] || vals[i] != wantV[i] {
				t.Fatalf("round %d: [%d] got (%d,%d) want (%d,%d)", round, i, keys[i], vals[i], wantK[i], wantV[i])
			}
		}
	}
}

func TestSortPairsParallelLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	SortPairsParallel(make([]uint32, 3), make([]uint32, 2), nil, nil, nil, parallel.Options{})
}

func BenchmarkSortPairsParallel1M(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 1 << 20
	keys := make([]uint32, n)
	vals := make([]uint32, n)
	tmpK := make([]uint32, n)
	tmpV := make([]uint32, n)
	for _, dist := range []string{"uniform", "dup-heavy"} {
		base := genDist(dist, n, rng)
		for _, workers := range []int{1, 2, 4, 8} {
			opts := parallel.Options{Workers: workers}
			hist := make([]int32, HistLen(n, opts))
			b.Run(fmt.Sprintf("%s/workers=%d", dist, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					copy(keys, base)
					for j := range vals {
						vals[j] = uint32(j)
					}
					b.StartTimer()
					SortPairsParallel(keys, vals, tmpK, tmpV, hist, opts)
				}
			})
		}
	}
}
