package sortu32

// Parallel pair sort: the key-ordered batch schedule's sort used to run
// entirely on the calling goroutine before the descent fanned out — the
// serial fraction the Amdahl math punishes hardest on skewed 1M+ batches,
// where the sort IS the schedule's cost.  SortPairsParallel removes it with
// a parallel MSB-radix partition:
//
//  1. histogram — each worker counts its contiguous span of keys into 256
//     buckets by the partition byte;
//  2. scatter — an exclusive prefix sum over (bucket, worker) gives every
//     worker a private write cursor per bucket, so all workers scatter
//     their spans concurrently with no synchronisation and no overlap, and
//     bucket regions stay in worker order (the partition is stable);
//  3. bucket sorts — the 256 bucket regions are independent, so workers
//     drain them through an atomic task counter (skew-proof: a worker that
//     finished a small bucket immediately draws the next), each bucket
//     LSD-radix-sorted over only the bytes BELOW the partition byte.
//
// The partition byte is the highest byte in which the batch varies at all
// (found by an OR-fold pre-pass, also parallel), so narrow-range batches —
// IN-lists over a dense domain, Zipf streams over a small hot set — still
// spread across all 256 buckets instead of collapsing into one.
//
// The result is bit-identical to SortPairsScratch: same stable order, same
// in-place contract.

import (
	"math/bits"
	"runtime"

	"cssidx/internal/parallel"
)

// parallelSortMin is the batch size below which the sequential sort wins
// (the partition needs two extra passes over the data to buy its
// parallelism).
const parallelSortMin = 1 << 15

// maxPartitionWorkers caps the partition fan-out: beyond this the
// per-worker histogram footprint (256 counters each) costs more cache than
// the extra workers return.
const maxPartitionWorkers = 32

// HistLen returns the scratch length SortPairsParallel needs in hist to run
// a batch of n keys allocation-free under opts.
func HistLen(n int, opts parallel.Options) int {
	w := opts.WorkersFor(n)
	if w > maxPartitionWorkers {
		w = maxPartitionWorkers
	}
	return w * 256
}

// SortPairsParallel sorts keys ascending in place, applying the identical
// stable permutation to vals, using the worker pool that opts grants: a
// parallel MSB-radix partition into 256 buckets followed by independent
// per-bucket sorts.  tmpK/tmpV are the ping-pong scratch (allocated when
// their capacity is below len(keys)); hist is the per-worker histogram
// scratch (see HistLen; allocated when short).  Small batches and
// single-worker grants fall back to the sequential SortPairsScratch; the
// resulting order is identical either way.
func SortPairsParallel(keys, vals, tmpK, tmpV []uint32, hist []int32, opts parallel.Options) {
	if len(keys) != len(vals) {
		panic("sortu32: keys and vals length mismatch")
	}
	n := len(keys)
	w := opts.WorkersFor(n)
	if w > maxPartitionWorkers {
		w = maxPartitionWorkers
	}
	// The partition pays two extra passes over the data to buy parallelism;
	// without real CPUs behind the workers (an explicit Workers above
	// GOMAXPROCS merely time-shares) the sequential sort is faster.
	if g := runtime.GOMAXPROCS(0); w > g {
		w = g
	}
	if w == 1 || n < parallelSortMin {
		SortPairsScratch(keys, vals, tmpK, tmpV)
		return
	}
	if cap(tmpK) < n || cap(tmpV) < n {
		tmpK = make([]uint32, n)
		tmpV = make([]uint32, n)
	}
	tmpK, tmpV = tmpK[:n], tmpV[:n]
	if cap(hist) < w*256 {
		hist = make([]int32, w*256)
	}
	hist = hist[:w*256]

	// Pick the partition byte: the highest byte where any key differs.
	var diffs [maxPartitionWorkers]uint32
	first := keys[0]
	parallel.Do(w, n, opts, func(t int) {
		lo, hi := parallel.Span(n, w, t)
		acc := uint32(0)
		for _, k := range keys[lo:hi] {
			acc |= k ^ first
		}
		diffs[t] = acc
	})
	acc := uint32(0)
	for t := 0; t < w; t++ {
		acc |= diffs[t]
	}
	if acc == 0 {
		return // every key equal: already sorted, permutation is identity
	}
	// Partition on the 8 highest VARYING bits, not the highest whole byte:
	// a narrow or duplicate-heavy range then still spreads over up to 256
	// buckets.  Bits above the varying range are identical in every key, so
	// their leakage into (k>>shift)&255 shifts every bucket index by the
	// same constant and the bucket order stays the key order.
	shift := uint(0)
	if l := bits.Len32(acc); l > 8 {
		shift = uint(l) - 8
	}

	// Per-worker histograms over contiguous spans.
	clear(hist)
	parallel.Do(w, n, opts, func(t int) {
		lo, hi := parallel.Span(n, w, t)
		h := hist[t*256 : t*256+256]
		for _, k := range keys[lo:hi] {
			h[(k>>shift)&255]++
		}
	})

	// Exclusive prefix sum in (bucket, worker) order: worker t's cursor for
	// bucket b starts after every lower bucket and after bucket b's keys
	// from workers < t — the layout that makes the scatter stable.
	var start [257]int32
	pos := int32(0)
	for b := 0; b < 256; b++ {
		start[b] = pos
		for t := 0; t < w; t++ {
			c := hist[t*256+b]
			hist[t*256+b] = pos
			pos += c
		}
	}
	start[256] = pos

	// Scatter: disjoint write cursors, no synchronisation.
	parallel.Do(w, n, opts, func(t int) {
		lo, hi := parallel.Span(n, w, t)
		h := hist[t*256 : t*256+256]
		for i := lo; i < hi; i++ {
			b := (keys[i] >> shift) & 255
			p := h[b]
			h[b]++
			tmpK[p] = keys[i]
			tmpV[p] = vals[i]
		}
	})

	// Independent bucket sorts over the remaining low bytes, drained by the
	// atomic task counter so skewed bucket sizes balance themselves; each
	// sort lands its bucket back into keys/vals.
	parallel.Do(256, n, opts, func(b int) {
		lo, hi := int(start[b]), int(start[b+1])
		if lo == hi {
			return
		}
		sortBucketInto(tmpK[lo:hi], tmpV[lo:hi], keys[lo:hi], vals[lo:hi], shift)
	})
}

// sortBucketInto stable-sorts the pairs (bk, bv) — whose keys all agree on
// every bit at or above topShift — by the bytes below topShift, leaving
// the result in (dk, dv).  The last LSD pass may straddle topShift; the
// bits it re-reads above topShift are equal across the bucket, so the pass
// stays a no-op there.  bk/bv are scratch after the call.
func sortBucketInto(bk, bv, dk, dv []uint32, topShift uint) {
	n := len(bk)
	if n < insertionThreshold {
		copy(dk, bk)
		copy(dv, bv)
		insertionPairs(dk, dv)
		return
	}
	srcK, srcV, dstK, dstV := bk, bv, dk, dv
	for shift := uint(0); shift < topShift; shift += radixBits {
		if sortedBy(srcK, shift) {
			continue
		}
		var counts [radixSize]int
		for _, k := range srcK {
			counts[(k>>shift)&(radixSize-1)]++
		}
		pos := 0
		for d := 0; d < radixSize; d++ {
			c := counts[d]
			counts[d] = pos
			pos += c
		}
		for i, k := range srcK {
			d := (k >> shift) & (radixSize - 1)
			dstK[counts[d]] = k
			dstV[counts[d]] = srcV[i]
			counts[d]++
		}
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if &srcK[0] != &dk[0] {
		copy(dk, srcK)
		copy(dv, srcV)
	}
}
