package sortu32

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 63, 64, 65, 1000, 100000} {
		a := make([]uint32, n)
		want := make([]uint32, n)
		for i := range a {
			a[i] = rng.Uint32()
		}
		copy(want, a)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		Sort(a)
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("n=%d: diverges at %d", n, i)
			}
		}
	}
}

func TestSortQuickProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		a := append([]uint32(nil), raw...)
		Sort(a)
		if !IsSorted(a) {
			return false
		}
		// Same multiset: compare against stdlib sort of the input.
		b := append([]uint32(nil), raw...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSortAlreadySortedAndReverse(t *testing.T) {
	n := 10000
	asc := make([]uint32, n)
	desc := make([]uint32, n)
	for i := range asc {
		asc[i] = uint32(i * 3)
		desc[i] = uint32((n - i) * 3)
	}
	Sort(asc)
	Sort(desc)
	if !IsSorted(asc) || !IsSorted(desc) {
		t.Error("edge distributions mis-sorted")
	}
}

func TestSortAllEqual(t *testing.T) {
	a := make([]uint32, 1000)
	for i := range a {
		a[i] = 7
	}
	Sort(a)
	for _, v := range a {
		if v != 7 {
			t.Fatal("values corrupted")
		}
	}
}

func TestSortPairsPermutesTogether(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 50, 64, 5000, 200000} {
		keys := make([]uint32, n)
		vals := make([]uint32, n)
		orig := map[uint32]uint32{}
		for i := range keys {
			keys[i] = rng.Uint32()
			vals[i] = uint32(i)
			orig[vals[i]] = keys[i]
		}
		SortPairs(keys, vals)
		if !IsSorted(keys) {
			t.Fatalf("n=%d: keys not sorted", n)
		}
		for i := range keys {
			if orig[vals[i]] != keys[i] {
				t.Fatalf("n=%d: val %d detached from its key", n, vals[i])
			}
		}
	}
}

func TestSortPairsStable(t *testing.T) {
	// Equal keys must keep insertion order of vals.
	keys := []uint32{5, 5, 5, 5, 1, 1, 9, 9, 9}
	vals := []uint32{0, 1, 2, 3, 4, 5, 6, 7, 8}
	// Force the radix path with padding beyond the insertion threshold.
	for i := 0; i < 100; i++ {
		keys = append(keys, 1000+uint32(i))
		vals = append(vals, 100+uint32(i))
	}
	SortPairs(keys, vals)
	wantPrefix := []uint32{4, 5, 0, 1, 2, 3, 6, 7, 8}
	for i, w := range wantPrefix {
		if vals[i] != w {
			t.Fatalf("stability broken at %d: vals=%v", i, vals[:9])
		}
	}
}

func TestSortPairsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SortPairs([]uint32{1, 2}, []uint32{1})
}

func TestMerge(t *testing.T) {
	cases := []struct{ a, b, want []uint32 }{
		{nil, nil, []uint32{}},
		{[]uint32{1, 3}, nil, []uint32{1, 3}},
		{nil, []uint32{2}, []uint32{2}},
		{[]uint32{1, 3, 5}, []uint32{2, 4, 6}, []uint32{1, 2, 3, 4, 5, 6}},
		{[]uint32{1, 1}, []uint32{1}, []uint32{1, 1, 1}},
		{[]uint32{5, 6}, []uint32{1, 2}, []uint32{1, 2, 5, 6}},
	}
	for _, c := range cases {
		got := Merge(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("Merge(%v,%v)=%v", c.a, c.b, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Merge(%v,%v)=%v", c.a, c.b, got)
				break
			}
		}
	}
}

func TestMergeQuickProperty(t *testing.T) {
	f := func(ra, rb []uint32) bool {
		a := append([]uint32(nil), ra...)
		b := append([]uint32(nil), rb...)
		Sort(a)
		Sort(b)
		m := Merge(a, b)
		return IsSorted(m) && len(m) == len(a)+len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRadixVsStdlib(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 1_000_000
	base := make([]uint32, n)
	for i := range base {
		base[i] = rng.Uint32()
	}
	b.Run("radix", func(b *testing.B) {
		a := make([]uint32, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(a, base)
			Sort(a)
		}
	})
	b.Run("stdlib", func(b *testing.B) {
		a := make([]uint32, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(a, base)
			sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
		}
	})
}
