// Package hashidx implements chained bucket hashing the way the paper
// (§3.5, §6.2) configures it, following Graefe et al. [GBC98]: the bucket
// size is the cache-line size, each bucket holds a slot counter, an overflow
// link, and as many ⟨key,RID⟩ pairs as fit, and the hash function is simply
// the low-order bits of the key ("cheap to compute").
//
// Hashing is the time/space extreme of the paper's trade-off: with a large
// enough directory it answers lookups in about a third of a CSS-tree's time,
// but the directory plus chains cost roughly 20× the space of the CSS-tree
// directory, it cannot answer range queries, and an ordered RID list must be
// kept separately for ordered access (the "direct" space column of
// Figure 7).  Skewed key sets lengthen chains and erode the advantage,
// which ChainStats makes observable.
package hashidx

import (
	"fmt"

	"cssidx/internal/mem"
)

// noNext marks a bucket without an overflow link.
const noNext = ^uint32(0)

// Layout of a bucket in uint32 slots: [count, next, k0, r0, k1, r1, …].
const bucketHeader = 2

// Table is a chained-bucket hash index over 4-byte keys.  Build with Build.
type Table struct {
	buckets    []uint32 // directory buckets then overflow buckets, slotsPerBucket each
	slots      int      // uint32 slots per bucket (cache line / 4)
	pairsPer   int      // pairs per bucket
	dirSize    int      // directory buckets (power of two)
	mask       uint32   // dirSize-1
	n          int
	overflowCt int
}

// Build constructs a hash table over keys (not necessarily sorted); RIDs are
// positions in keys.  dirSize must be a power of two; bucketBytes is the
// bucket size in bytes (use mem.CacheLine to match the paper) and must hold
// the header plus at least one pair.
func Build(keys []uint32, dirSize, bucketBytes int) *Table {
	if !mem.IsPow2(dirSize) {
		panic(fmt.Sprintf("hashidx: directory size %d is not a power of two", dirSize))
	}
	slots := bucketBytes / 4
	if bucketBytes%4 != 0 || slots < bucketHeader+2 {
		panic(fmt.Sprintf("hashidx: bucket size %d bytes cannot hold a pair", bucketBytes))
	}
	t := &Table{
		slots:    slots,
		pairsPer: (slots - bucketHeader) / 2,
		dirSize:  dirSize,
		mask:     uint32(dirSize - 1),
		n:        len(keys),
	}

	// Two-pass bulk build: size every chain first, then fill.  All space is
	// preallocated once and stays cache-line aligned (the paper's footnote:
	// "in a main memory database system, all the space will be preallocated
	// once").
	counts := make([]int, dirSize)
	for _, k := range keys {
		counts[k&t.mask]++
	}
	totalBuckets := dirSize
	for _, c := range counts {
		if c > t.pairsPer {
			totalBuckets += mem.CeilDiv(c, t.pairsPer) - 1
		}
	}
	t.overflowCt = totalBuckets - dirSize
	t.buckets = mem.AlignedU32(totalBuckets*slots, mem.CacheLine)
	// Pre-link each chain; overflow buckets are handed out sequentially.
	nextFree := dirSize
	cursor := make([]int, dirSize) // current tail bucket per directory slot
	for d := 0; d < dirSize; d++ {
		cursor[d] = d
		need := 0
		if counts[d] > t.pairsPer {
			need = mem.CeilDiv(counts[d], t.pairsPer) - 1
		}
		b := d
		for o := 0; o < need; o++ {
			t.buckets[b*slots+1] = uint32(nextFree)
			b = nextFree
			nextFree++
		}
		t.buckets[b*slots+1] = noNext
	}
	// Fill in insertion order, preserving lowest-RID-first within chains
	// (leftmost-duplicate semantics shared with the ordered methods).
	for i, k := range keys {
		d := int(k & t.mask)
		b := cursor[d]
		base := b * slots
		cnt := int(t.buckets[base])
		if cnt == t.pairsPer {
			b = int(t.buckets[base+1])
			cursor[d] = b
			base = b * slots
			cnt = 0
		}
		t.buckets[base+bucketHeader+2*cnt] = k
		t.buckets[base+bucketHeader+2*cnt+1] = uint32(i)
		t.buckets[base] = uint32(cnt + 1)
	}
	return t
}

// Search returns the RID of the first-inserted occurrence of key and true,
// or 0,false if absent.
func (t *Table) Search(key uint32) (uint32, bool) {
	b := int(key & t.mask)
	for {
		base := b * t.slots
		cnt := int(t.buckets[base])
		for i := 0; i < cnt; i++ {
			if t.buckets[base+bucketHeader+2*i] == key {
				return t.buckets[base+bucketHeader+2*i+1], true
			}
		}
		next := t.buckets[base+1]
		if next == noNext {
			return 0, false
		}
		b = int(next)
	}
}

// SearchAll appends the RIDs of every occurrence of key to dst and returns
// it — §3.6: "hashing needs to search the entire bucket for all the
// matches" (here: the entire chain).
func (t *Table) SearchAll(key uint32, dst []uint32) []uint32 {
	b := int(key & t.mask)
	for {
		base := b * t.slots
		cnt := int(t.buckets[base])
		for i := 0; i < cnt; i++ {
			if t.buckets[base+bucketHeader+2*i] == key {
				dst = append(dst, t.buckets[base+bucketHeader+2*i+1])
			}
		}
		next := t.buckets[base+1]
		if next == noNext {
			return dst
		}
		b = int(next)
	}
}

// SpaceBytes returns the arena footprint: directory plus overflow buckets.
// The paper's "indirect" accounting ((h−1)·n·R) counts only the overhead
// beyond raw pairs; we report the whole structure, which is what the
// "direct" column of Figure 7 uses.
func (t *Table) SpaceBytes() int { return mem.SliceBytes(t.buckets) }

// DirSize returns the number of directory buckets.
func (t *Table) DirSize() int { return t.dirSize }

// RawBuckets returns the bucket arena (read-only), exposed for the cache
// simulator which replays bucket accesses address by address.
func (t *Table) RawBuckets() []uint32 { return t.buckets }

// SlotsPerBucket returns the bucket size in uint32 slots.
func (t *Table) SlotsPerBucket() int { return t.slots }

// OverflowBuckets returns how many chain buckets were allocated beyond the
// directory.
func (t *Table) OverflowBuckets() int { return t.overflowCt }

// Len returns the number of indexed keys.
func (t *Table) Len() int { return t.n }

// ChainStats reports chain-length statistics in buckets: the average and
// maximum number of buckets a lookup may traverse, and the load factor in
// pairs per directory bucket.  Long maxima under skewed keys are the §3.5
// caveat ("skewed data can seriously affect the performance of hash
// indices").
func (t *Table) ChainStats() (avgBuckets float64, maxBuckets int, loadFactor float64) {
	totalBuckets := 0
	for d := 0; d < t.dirSize; d++ {
		length := 1
		b := d
		for {
			next := t.buckets[b*t.slots+1]
			if next == noNext {
				break
			}
			b = int(next)
			length++
		}
		totalBuckets += length
		if length > maxBuckets {
			maxBuckets = length
		}
	}
	return float64(totalBuckets) / float64(t.dirSize), maxBuckets, float64(t.n) / float64(t.dirSize)
}

// String describes the table for diagnostics.
func (t *Table) String() string {
	return fmt.Sprintf("hash{n=%d dir=%d overflow=%d space=%s}",
		t.n, t.dirSize, t.overflowCt, mem.Bytes(t.SpaceBytes()))
}
