package hashidx

import (
	"sort"
	"testing"
	"testing/quick"

	"cssidx/internal/mem"
	"cssidx/internal/workload"
)

func TestSearchFoundAndMissing(t *testing.T) {
	g := workload.New(70)
	keys := g.SortedDistinct(20000)
	for _, dir := range []int{1 << 8, 1 << 12, 1 << 15} {
		tab := Build(keys, dir, mem.CacheLine)
		for _, k := range g.Lookups(keys, 3000) {
			rid, ok := tab.Search(k)
			if !ok || keys[rid] != k {
				t.Fatalf("dir=%d: Search(%d)=(%d,%v)", dir, k, rid, ok)
			}
		}
		for _, k := range g.Misses(keys, 3000) {
			if _, ok := tab.Search(k); ok {
				t.Fatalf("dir=%d: found absent key %d", dir, k)
			}
		}
	}
}

func TestTinyDirectoryForcesChains(t *testing.T) {
	g := workload.New(71)
	keys := g.SortedDistinct(5000)
	tab := Build(keys, 4, mem.CacheLine) // 4 buckets × 7 pairs: heavy overflow
	if tab.OverflowBuckets() == 0 {
		t.Fatal("expected overflow buckets")
	}
	for _, k := range g.Lookups(keys, 1000) {
		rid, ok := tab.Search(k)
		if !ok || keys[rid] != k {
			t.Fatalf("Search(%d)=(%d,%v)", k, rid, ok)
		}
	}
	for _, k := range g.Misses(keys, 1000) {
		if _, ok := tab.Search(k); ok {
			t.Fatalf("found absent key %d", k)
		}
	}
}

func TestFirstInsertedWinsOnDuplicates(t *testing.T) {
	g := workload.New(72)
	keys := g.SortedWithDuplicates(10000, 5)
	tab := Build(keys, 1<<10, mem.CacheLine)
	for _, k := range g.Lookups(keys, 2000) {
		rid, ok := tab.Search(k)
		want := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
		if !ok || int(rid) != want {
			t.Fatalf("Search(%d)=(%d,%v), want leftmost %d", k, rid, ok, want)
		}
	}
}

func TestSearchAllFindsEveryDuplicate(t *testing.T) {
	keys := []uint32{7, 7, 7, 12, 12, 99}
	tab := Build(keys, 8, mem.CacheLine)
	rids := tab.SearchAll(7, nil)
	if len(rids) != 3 {
		t.Fatalf("SearchAll(7) returned %d rids", len(rids))
	}
	seen := map[uint32]bool{}
	for _, r := range rids {
		seen[r] = true
	}
	for want := uint32(0); want < 3; want++ {
		if !seen[want] {
			t.Errorf("SearchAll(7) missing rid %d", want)
		}
	}
	if got := tab.SearchAll(8, nil); len(got) != 0 {
		t.Errorf("SearchAll(8) returned %v", got)
	}
}

func TestChainStatsUniform(t *testing.T) {
	g := workload.New(73)
	keys := g.SortedDistinct(1 << 14)
	tab := Build(keys, 1<<12, mem.CacheLine) // load factor 4 pairs/bucket < 7
	avg, max, load := tab.ChainStats()
	if load != 4 {
		t.Errorf("load factor %v, want 4", load)
	}
	if avg > 1.2 {
		t.Errorf("uniform keys: avg chain %.2f buckets, want ≈1", avg)
	}
	if max > 4 {
		t.Errorf("uniform keys: max chain %d buckets", max)
	}
}

func TestChainStatsSkewedClustersCollide(t *testing.T) {
	// Low-order-bit hashing is the paper's cheap function; keys sharing low
	// bits (stride = dirSize) all collide — the §3.5 skew caveat.
	dir := 1 << 8
	keys := make([]uint32, 2000)
	for i := range keys {
		keys[i] = uint32(i * dir) // identical low bits
	}
	tab := Build(keys, dir, mem.CacheLine)
	_, max, _ := tab.ChainStats()
	if max < 100 {
		t.Errorf("adversarial keys: max chain %d buckets, expected a long chain", max)
	}
	// Still correct, just slow.
	for _, k := range []uint32{0, uint32(dir), uint32(1999 * dir)} {
		if _, ok := tab.Search(k); !ok {
			t.Errorf("Search(%d) missed", k)
		}
	}
}

func TestSpaceGrowsWithDirectory(t *testing.T) {
	g := workload.New(74)
	keys := g.SortedDistinct(10000)
	small := Build(keys, 1<<8, mem.CacheLine).SpaceBytes()
	large := Build(keys, 1<<16, mem.CacheLine).SpaceBytes()
	if large <= small {
		t.Errorf("space should grow with directory: %d vs %d", small, large)
	}
	// §6.3: a fast hash table costs far more than the raw pairs.
	if large < 8*len(keys) {
		t.Errorf("large directory %d below pair bytes", large)
	}
}

func TestBuildPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Build([]uint32{1}, 3, 64) },  // non-power-of-two dir
		func() { Build([]uint32{1}, 8, 12) },  // bucket too small for a pair
		func() { Build([]uint32{1}, 8, 14) },  // not a multiple of 4
		func() { Build([]uint32{1}, 0, 64) },  // zero directory
		func() { Build([]uint32{1}, -4, 64) }, // negative
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEmptyTable(t *testing.T) {
	tab := Build(nil, 16, mem.CacheLine)
	if _, ok := tab.Search(1); ok {
		t.Error("found key in empty table")
	}
	if tab.OverflowBuckets() != 0 {
		t.Error("overflow in empty table")
	}
}

func TestQuickPropertyMembership(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		keys := make([]uint32, len(raw))
		present := map[uint32]int{}
		for i, v := range raw {
			keys[i] = uint32(v)
			if _, seen := present[uint32(v)]; !seen {
				present[uint32(v)] = i
			}
		}
		tab := Build(keys, 64, mem.CacheLine)
		rid, ok := tab.Search(uint32(probe))
		wantRID, wantOK := present[uint32(probe)]
		if ok != wantOK {
			return false
		}
		return !ok || int(rid) == wantRID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBucketGeometry(t *testing.T) {
	// 64-byte bucket = 16 slots: count + next + 7 pairs.
	tab := Build([]uint32{1, 2, 3}, 4, 64)
	if tab.pairsPer != 7 {
		t.Errorf("pairsPer=%d, want 7", tab.pairsPer)
	}
	// 32-byte bucket (the paper's Pentium L1 line) = count + next + 3 pairs.
	tab = Build([]uint32{1, 2, 3}, 4, 32)
	if tab.pairsPer != 3 {
		t.Errorf("pairsPer=%d, want 3", tab.pairsPer)
	}
}

func TestExactOverflowAccounting(t *testing.T) {
	// 1 bucket directory, 7 pairs per bucket, 30 keys → 1 + ceil(30/7)-1 = 5 buckets.
	keys := make([]uint32, 30)
	for i := range keys {
		keys[i] = uint32(i)
	}
	tab := Build(keys, 1, mem.CacheLine)
	if tab.OverflowBuckets() != 4 {
		t.Errorf("overflow=%d, want 4", tab.OverflowBuckets())
	}
	for _, k := range keys {
		if rid, ok := tab.Search(k); !ok || rid != k {
			t.Fatalf("Search(%d)=(%d,%v)", k, rid, ok)
		}
	}
}
