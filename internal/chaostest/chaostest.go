// Package chaostest soaks the governed engine: mixed read/append/fold
// workloads run under seeded cancellation storms, deadline storms, memory
// budget pressure, admission-control overload, filesystem fault schedules
// (internal/failfs scenarios) and parallel worker panics — all at once,
// which is how production fails.
//
// The harness holds the engine to three invariants:
//
//  1. Typed aborts only.  Every governed operation either succeeds or
//     fails with exactly one of context.Canceled, context.DeadlineExceeded,
//     governor.ErrBudgetExceeded, governor.ErrShed — or, on the durable
//     leg, an injected I/O error.  Anything else is a bug.
//  2. Bit-identical reads after the storm.  An oracle table receives
//     exactly the batches the governed table acknowledged; once the storm
//     ends, every query surface must return byte-for-byte the oracle's
//     answer — no torn epochs, no poisoned cache entries, no lost or
//     duplicated appends.  The durable leg additionally crash-recovers
//     and checks the WAL's prefix consistency against the acknowledgment
//     record.
//  3. Counters reconcile.  The governor_* telemetry series must agree
//     exactly with the aborts the harness observed: cancels, timeouts,
//     budget aborts and sheds are each counted once, at the surface.
//
// Everything is driven by one seed, so a failing storm replays exactly.
package chaostest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"cssidx"
	"cssidx/internal/failfs"
	"cssidx/internal/governor"
	"cssidx/internal/mmdb"
	"cssidx/internal/parallel"
	"cssidx/internal/telemetry"
	"cssidx/internal/wal"
	"cssidx/internal/workload"
)

// Config sizes one soak.  The zero value is filled with small defaults
// suitable for a unit-test leg; crank Rounds/QueryWorkers for a long soak.
type Config struct {
	Seed          int64
	QueryWorkers  int  // storm goroutines issuing queries (default 4)
	Rounds        int  // queries per worker (default 150)
	AppendBatches int  // governed in-memory appends (default 30)
	DurableRounds int  // appends on the durable/WAL leg (default 40)
	BaseRows      int  // rows in the pre-storm table (default 4000)
	PanicStorm    bool // drive parallel worker panics alongside the storm

	// Scenario is the failfs fault schedule for the durable leg
	// (failfs.FsyncStorm, TornTail, SlowIO, or a Compose of them).  Nil
	// runs the durable leg fault-free.
	Scenario failfs.Scenario

	// Admission configures the governed table's controller.  Zero gets a
	// tight gate (MaxConcurrent 3, MaxQueue 4) so overload actually sheds.
	Admission governor.Options
}

func (c *Config) fill() {
	if c.QueryWorkers <= 0 {
		c.QueryWorkers = 4
	}
	if c.Rounds <= 0 {
		c.Rounds = 150
	}
	if c.AppendBatches <= 0 {
		c.AppendBatches = 30
	}
	if c.DurableRounds <= 0 {
		c.DurableRounds = 40
	}
	if c.BaseRows <= 0 {
		c.BaseRows = 4000
	}
	if c.Admission == (governor.Options{}) {
		c.Admission = governor.Options{MaxConcurrent: 3, MaxQueue: 4, MaxBytesInFlight: 1 << 22}
	}
}

// Report is what one soak observed; the harness has already verified the
// invariants, so a returned Report means the storm passed.
type Report struct {
	Queries      int // governed queries issued
	Succeeded    int
	Cancels      int // aborts observed per typed class
	Timeouts     int
	BudgetAborts int
	Sheds        int

	AppendsAcked   int // in-memory governed appends applied
	AppendsAborted int

	DurableAcked    int // durable appends acknowledged by the WAL
	DurableAborted  int // aborted by governance before reaching the log
	DurableIOErrors int // refused by injected filesystem faults
	RecoveredRows   int // rows surviving crash + WAL replay

	WorkerPanics int // parallel worker panics surfaced as *parallel.WorkerPanic
}

// outcome classifies one governed result exactly the way
// governor.NoteAbort does, so observed counts and counters reconcile.
type outcome int

const (
	outOK outcome = iota
	outCancel
	outTimeout
	outBudget
	outShed
	outIO
	outUnexpected
)

func classify(err error) outcome {
	switch {
	case err == nil:
		return outOK
	case errors.Is(err, context.Canceled):
		return outCancel
	case errors.Is(err, context.DeadlineExceeded):
		return outTimeout
	case errors.Is(err, governor.ErrBudgetExceeded):
		return outBudget
	case errors.Is(err, governor.ErrShed):
		return outShed
	}
	return outUnexpected
}

// soak is the running state of one storm.
type soak struct {
	cfg    Config
	tab    *mmdb.Table // governed: cache + admission + storm traffic
	oracle *mmdb.Table // ungoverned twin fed only acknowledged batches

	// tlock models the engine's concurrency contract: a ShardedIndex
	// serves lock-free from any goroutine concurrently with AppendRows
	// (epoch swaps), but every other surface follows the single-writer
	// model — so the appender takes the write side and the raw-reading
	// query surfaces the read side, while sharded queries deliberately
	// run outside the lock to hammer epoch publication under fire.
	tlock sync.RWMutex

	mu     sync.Mutex
	rep    Report
	errs   []error
	inList []uint32 // IN-list sample drawn from the low-cardinality column
	domHi  uint32
}

func (s *soak) fail(format string, args ...any) {
	s.mu.Lock()
	s.errs = append(s.errs, fmt.Errorf(format, args...))
	s.mu.Unlock()
}

// addAbortLocked tallies one typed abort into the per-class counts the
// telemetry reconciliation checks against; s.mu held.
func (s *soak) addAbortLocked(o outcome) {
	switch o {
	case outCancel:
		s.rep.Cancels++
	case outTimeout:
		s.rep.Timeouts++
	case outBudget:
		s.rep.BudgetAborts++
	case outShed:
		s.rep.Sheds++
	}
}

// note records one governed query outcome; unexpected errors fail the soak.
func (s *soak) note(what string, err error) {
	o := classify(err)
	s.mu.Lock()
	s.rep.Queries++
	switch o {
	case outOK:
		s.rep.Succeeded++
	case outUnexpected:
		s.errs = append(s.errs, fmt.Errorf("%s: untyped error under governance: %w", what, err))
	default:
		s.addAbortLocked(o)
	}
	s.mu.Unlock()
}

func buildTable(name string, g *workload.Gen, rows int) (*mmdb.Table, error) {
	a := g.Lookups(g.SortedUniform(rows/2+1), rows)
	b := g.Lookups(g.SortedUniform(rows/4+1), rows)
	c := g.Lookups(g.SortedUniform(48), rows)
	t := mmdb.NewTable(name)
	for col, vals := range map[string][]uint32{"a": a, "b": b, "c": c} {
		if err := t.AddColumn(col, vals); err != nil {
			return nil, err
		}
	}
	if _, err := t.BuildIndex("a", cssidx.KindLevelCSS, cssidx.Options{}); err != nil {
		return nil, err
	}
	if _, err := t.BuildShardedIndex("b", 4); err != nil {
		return nil, err
	}
	return t, nil
}

// stormCtx rolls one governed context: maybe doomed, maybe deadlined,
// maybe budgeted, always cancellable.  The returned stop func must be
// called when the query returns.
func stormCtx(rng *rand.Rand) (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	stop := cancel
	switch rng.Intn(5) {
	case 0: // cancellation storm: a racing cancel mid-query
		go cancel()
	case 1: // deadline storm
		var dcancel context.CancelFunc
		ctx, dcancel = context.WithTimeout(ctx, time.Duration(50+rng.Intn(500))*time.Microsecond)
		stop = func() { dcancel(); cancel() }
	case 2: // budget pressure
		ctx = governor.WithBudget(ctx, int64(256+rng.Intn(4096)))
	case 3: // already dead on arrival
		cancel()
	default: // live and unconstrained (but governed: done != nil)
	}
	if rng.Intn(2) == 0 {
		ctx = governor.WithStride(ctx, 1+rng.Intn(512))
	}
	return ctx, stop
}

// queryWorker storms the governed table with mixed reads.
func (s *soak) queryWorker(id int) {
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(id)*7919))
	ix, _ := s.tab.Index("a")
	sh, _ := s.tab.ShardedIndex("b")
	for i := 0; i < s.cfg.Rounds; i++ {
		ctx, stop := stormCtx(rng)
		lo := rng.Uint32() % s.domHi
		hi := lo + rng.Uint32()%(s.domHi-lo+1)
		switch rng.Intn(8) {
		case 0:
			s.tlock.RLock()
			_, _, err := s.tab.SelectRangeCtx(ctx, "a", lo, hi, nil)
			s.tlock.RUnlock()
			s.note("SelectRangeCtx", err)
		case 1:
			s.tlock.RLock()
			_, _, err := s.tab.SelectInCtx(ctx, "c", s.inList, nil)
			s.tlock.RUnlock()
			s.note("SelectInCtx", err)
		case 2:
			preds := []mmdb.RangePred{{Col: "a", Lo: lo, Hi: hi}, {Col: "b", Lo: 0, Hi: s.domHi}}
			s.tlock.RLock()
			_, _, err := s.tab.SelectWhereCtx(ctx, preds, nil)
			s.tlock.RUnlock()
			s.note("SelectWhereCtx", err)
		case 3:
			s.tlock.RLock()
			_, err := mmdb.GroupAggregateCtx(ctx, s.tab, "c", "a", nil, nil)
			s.tlock.RUnlock()
			s.note("GroupAggregateCtx", err)
		case 4:
			if ix != nil {
				s.tlock.RLock()
				_, err := ix.SelectEqualCtx(ctx, lo)
				s.tlock.RUnlock()
				s.note("SelectEqualCtx", err)
			}
		case 5:
			// Lock-free on purpose: epoch swaps under fire.
			if sh != nil {
				_, err := sh.SelectRangeCtx(ctx, lo, hi)
				s.note("sharded SelectRangeCtx", err)
			}
		case 6:
			// Lock-free on purpose: epoch swaps under fire.
			if sh != nil {
				_, err := sh.SelectInCtx(ctx, s.inList)
				s.note("sharded SelectInCtx", err)
			}
		case 7:
			s.tlock.RLock()
			_, err := mmdb.JoinWithCtx(ctx, s.tab, "b", ix, mmdb.JoinOptions{}, nil, nil)
			s.tlock.RUnlock()
			s.note("JoinWithCtx", err)
		}
		stop()
	}
}

// appender serializes governed appends and keeps the oracle in lockstep:
// a batch lands in the oracle exactly when the governed append returned
// nil.  Runs concurrently with the query storm, so every append is also
// an epoch swap under fire.
func (s *soak) appender() {
	rng := rand.New(rand.NewSource(s.cfg.Seed + 104729))
	for i := 0; i < s.cfg.AppendBatches; i++ {
		n := 1 + rng.Intn(8)
		batch := map[string][]uint32{}
		for _, col := range []string{"a", "b", "c"} {
			vals := make([]uint32, n)
			for j := range vals {
				vals[j] = rng.Uint32() % s.domHi
			}
			batch[col] = vals
		}
		ctx, stop := stormCtx(rng)
		s.tlock.Lock()
		err := s.tab.AppendRowsCtx(ctx, batch)
		s.tlock.Unlock()
		stop()
		switch o := classify(err); o {
		case outOK:
			if oerr := s.oracle.AppendRows(batch); oerr != nil {
				s.fail("oracle append: %v", oerr)
				return
			}
			s.mu.Lock()
			s.rep.AppendsAcked++
			s.mu.Unlock()
		case outUnexpected:
			s.fail("AppendRowsCtx: untyped error: %v", err)
		default:
			s.mu.Lock()
			s.rep.AppendsAborted++
			s.addAbortLocked(o)
			s.mu.Unlock()
		}
	}
}

// panicWorker drives the parallel pool with bodies that panic at seeded
// points: each panic must surface exactly once as *parallel.WorkerPanic
// (never kill the process, never deadlock the batch), with sibling
// workers stopped by the shared cancel flag.
func (s *soak) panicWorker() {
	rng := rand.New(rand.NewSource(s.cfg.Seed + 1299709))
	opts := parallel.Options{Workers: 4, MinBatchPerWorker: 1, CheckpointStride: 8}
	for i := 0; i < s.cfg.Rounds/4+1; i++ {
		bad := rng.Intn(64)
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					wp, ok := r.(*parallel.WorkerPanic)
					if !ok {
						s.fail("panic crossed the pool unwrapped: %v", r)
						return
					}
					err = wp
				}
			}()
			return parallel.RunCtx(context.Background(), 64, opts, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					if j == bad {
						panic(fmt.Sprintf("chaos worker panic %d", i))
					}
				}
			})
		}()
		var wp *parallel.WorkerPanic
		if !errors.As(err, &wp) {
			s.fail("panic round %d: got %v, want *parallel.WorkerPanic", i, err)
			continue
		}
		s.mu.Lock()
		s.rep.WorkerPanics++
		s.mu.Unlock()
	}
}

// durableLeg appends to a WAL-backed table through an injected-fault
// filesystem, then crashes it and verifies recovery: the recovered batch
// sequence must be an in-order subsequence of the submitted batches that
// contains every acknowledged one.
func (s *soak) durableLeg() {
	rng := rand.New(rand.NewSource(s.cfg.Seed + 15485863))
	fsys := failfs.NewMem(s.cfg.Seed)
	fsys.SetScenario(s.cfg.Scenario)
	// The scenario may refuse the open itself (its mkdir/open/sync ops
	// are failpoints too): count each refusal as an injected fault and
	// retry, like an operator bouncing a flaky volume.
	var d *mmdb.DurableTable
	for {
		var err error
		d, err = mmdb.OpenDurable(fsys, "db", "soak", wal.Always())
		if err == nil {
			break
		}
		if classify(err) != outUnexpected {
			s.fail("durable open: %v", err)
			return
		}
		s.mu.Lock()
		s.rep.DurableIOErrors++
		retries := s.rep.DurableIOErrors
		s.mu.Unlock()
		if retries > 100 {
			s.fail("durable open never succeeded under scenario: %v", err)
			return
		}
	}
	// Batch i carries the single value i, so the recovered column spells
	// out the recovered batch sequence directly.
	acked := make([]bool, s.cfg.DurableRounds)
	for i := 0; i < s.cfg.DurableRounds; i++ {
		ctx, stop := stormCtx(rng)
		err := d.AppendRowsCtx(ctx, map[string][]uint32{"k": {uint32(i)}})
		stop()
		switch o := classify(err); o {
		case outOK:
			acked[i] = true
			s.mu.Lock()
			s.rep.DurableAcked++
			s.mu.Unlock()
		case outUnexpected:
			// Injected filesystem faults (and the WAL poisoning itself
			// after one) are the expected untyped class on this leg.
			s.mu.Lock()
			s.rep.DurableIOErrors++
			s.mu.Unlock()
		default:
			s.mu.Lock()
			s.rep.DurableAborted++
			s.addAbortLocked(o)
			s.mu.Unlock()
		}
	}
	// Crash: lose the storm's volatile state, then recover fault-free.
	fsys.SetScenario(nil)
	fsys.Crash()
	r, err := mmdb.OpenDurable(fsys, "db", "soak", wal.Always())
	if err != nil {
		s.fail("durable recovery: %v", err)
		return
	}
	defer r.Close()
	if r.Rows() == 0 && s.rep.DurableAcked > 0 {
		s.fail("recovery lost all %d acknowledged batches", s.rep.DurableAcked)
		return
	}
	col, ok := r.Column("k")
	if !ok {
		if s.rep.DurableAcked > 0 {
			s.fail("recovered table has no column k")
		}
		return
	}
	recovered := make([]uint32, col.Len())
	for i := range recovered {
		recovered[i] = col.Value(i)
	}
	s.mu.Lock()
	s.rep.RecoveredRows = len(recovered)
	s.mu.Unlock()
	// In-order subsequence of submitted batch stamps…
	next := 0
	for _, v := range recovered {
		if int(v) < next {
			s.fail("recovered batches out of order or duplicated: stamp %d after %d", v, next-1)
			return
		}
		next = int(v) + 1
	}
	// …containing every acknowledged batch.
	got := map[uint32]bool{}
	for _, v := range recovered {
		got[v] = true
	}
	for i, ok := range acked {
		if ok && !got[uint32(i)] {
			s.fail("acknowledged batch %d lost by recovery", i)
			return
		}
	}
}

// verifyPostStorm runs the full read battery ungoverned on the stormed
// table and demands bit-identical answers from the oracle.
func (s *soak) verifyPostStorm() {
	if s.tab.Rows() != s.oracle.Rows() {
		s.fail("row count diverged: governed %d, oracle %d", s.tab.Rows(), s.oracle.Rows())
		return
	}
	equal := func(what string, got, want []uint32, gerr, werr error) {
		if gerr != nil || werr != nil {
			s.fail("%s post-storm: governed err %v, oracle err %v", what, gerr, werr)
			return
		}
		if len(got) != len(want) {
			s.fail("%s post-storm: %d rids vs oracle %d", what, len(got), len(want))
			return
		}
		for i := range want {
			if got[i] != want[i] {
				s.fail("%s post-storm: rid[%d] = %d, oracle %d", what, i, got[i], want[i])
				return
			}
		}
	}
	got, _, gerr := s.tab.SelectRange("a", 0, math.MaxUint32)
	want, _, werr := s.oracle.SelectRange("a", 0, math.MaxUint32)
	equal("SelectRange a", got, want, gerr, werr)

	got, _, gerr = s.tab.SelectRange("b", 0, math.MaxUint32)
	want, _, werr = s.oracle.SelectRange("b", 0, math.MaxUint32)
	equal("SelectRange b (sharded)", got, want, gerr, werr)

	got, _, gerr = s.tab.SelectIn("c", s.inList)
	want, _, werr = s.oracle.SelectIn("c", s.inList)
	equal("SelectIn c", got, want, gerr, werr)

	preds := []mmdb.RangePred{{Col: "a", Lo: 0, Hi: math.MaxUint32}, {Col: "b", Lo: s.domHi / 4, Hi: s.domHi}}
	got, _, gerr = s.tab.SelectWhere(preds)
	want, _, werr = s.oracle.SelectWhere(preds)
	equal("SelectWhere", got, want, gerr, werr)

	gagg, gerr := mmdb.GroupAggregate(s.tab, "c", "a", nil)
	wagg, werr := mmdb.GroupAggregate(s.oracle, "c", "a", nil)
	if gerr != nil || werr != nil {
		s.fail("GroupAggregate post-storm: governed err %v, oracle err %v", gerr, werr)
		return
	}
	if len(gagg) != len(wagg) {
		s.fail("GroupAggregate post-storm: %d groups vs oracle %d", len(gagg), len(wagg))
		return
	}
	for i := range wagg {
		if gagg[i] != wagg[i] {
			s.fail("GroupAggregate post-storm: group %d = %+v, oracle %+v", i, gagg[i], wagg[i])
			return
		}
	}
}

// counterDelta snapshots the four governor abort counters.
type counterDelta struct{ cancels, timeouts, budgets, sheds uint64 }

func snapCounters() counterDelta {
	return counterDelta{
		cancels:  telemetry.C("governor_cancels_total").Value(),
		timeouts: telemetry.C("governor_timeouts_total").Value(),
		budgets:  telemetry.C("governor_budget_aborts_total").Value(),
		sheds:    telemetry.C("governor_sheds_total").Value(),
	}
}

// Run executes one seeded soak and verifies every invariant.  The error
// aggregates every violation the storm surfaced (nil = clean pass).
func Run(cfg Config) (*Report, error) {
	cfg.fill()
	wasEnabled := telemetry.Enabled()
	telemetry.Enable()
	if !wasEnabled {
		defer telemetry.Disable()
	}
	baseGoroutines := runtime.NumGoroutine()

	g := workload.New(cfg.Seed)
	tab, err := buildTable("storm", g, cfg.BaseRows)
	if err != nil {
		return nil, err
	}
	tab.EnableCache(mmdb.CacheOptions{MinCostNs: -1})
	gov := tab.EnableGovernor(cfg.Admission)
	og := workload.New(cfg.Seed)
	oracle, err := buildTable("storm", og, cfg.BaseRows)
	if err != nil {
		return nil, err
	}

	s := &soak{cfg: cfg, tab: tab, oracle: oracle, domHi: math.MaxUint32 - 1}
	cVals, _ := tab.Column("c")
	s.inList = cVals.Domain().Values()

	before := snapCounters()

	var wg sync.WaitGroup
	for w := 0; w < cfg.QueryWorkers; w++ {
		wg.Add(1)
		go func(w int) { defer wg.Done(); s.queryWorker(w) }(w)
	}
	wg.Add(1)
	go func() { defer wg.Done(); s.appender() }()
	wg.Add(1)
	go func() { defer wg.Done(); s.durableLeg() }()
	if cfg.PanicStorm {
		wg.Add(1)
		go func() { defer wg.Done(); s.panicWorker() }()
	}
	wg.Wait()

	// Invariant 2: bit-identical post-storm reads.
	s.verifyPostStorm()

	// Invariant 3: counters reconcile 1:1 with observed aborts.  Query,
	// append and durable aborts all flowed through addAbortLocked, the
	// mirror of governor.NoteAbort's classification.
	after := snapCounters()
	if d := after.cancels - before.cancels; d != uint64(s.rep.Cancels) {
		s.fail("governor_cancels_total moved %d, observed %d", d, s.rep.Cancels)
	}
	if d := after.timeouts - before.timeouts; d != uint64(s.rep.Timeouts) {
		s.fail("governor_timeouts_total moved %d, observed %d", d, s.rep.Timeouts)
	}
	if d := after.budgets - before.budgets; d != uint64(s.rep.BudgetAborts) {
		s.fail("governor_budget_aborts_total moved %d, observed %d", d, s.rep.BudgetAborts)
	}
	if d := after.sheds - before.sheds; d != uint64(s.rep.Sheds) {
		s.fail("governor_sheds_total moved %d, observed %d", d, s.rep.Sheds)
	}
	if st := gov.Stats(); st.Running != 0 || st.Queued != 0 || st.BytesInFlight != 0 {
		s.fail("admission state leaked after storm: %+v", st)
	}

	// No goroutine leaks: everything the storm started must wind down.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines+2 {
		s.fail("goroutine leak: %d before storm, %d after", baseGoroutines, n)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.errs) > 0 {
		return &s.rep, errors.Join(s.errs...)
	}
	rep := s.rep
	return &rep, nil
}
