package chaostest

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"cssidx/internal/failfs"
	"cssidx/internal/governor"
	"cssidx/internal/mmdb"
	"cssidx/internal/workload"
)

// checkSoak runs one configured storm and applies the common activity
// assertions: the storm must actually have exercised aborts AND
// successes, or it proved nothing.
func checkSoak(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("soak failed:\n%v", err)
	}
	if rep.Queries == 0 || rep.Succeeded == 0 {
		t.Fatalf("storm idle: %+v", rep)
	}
	if rep.Cancels+rep.Timeouts+rep.BudgetAborts+rep.Sheds == 0 {
		t.Fatalf("storm never aborted anything: %+v", rep)
	}
	return rep
}

func TestSoakClean(t *testing.T) {
	rep := checkSoak(t, Config{Seed: 1, PanicStorm: true})
	if rep.WorkerPanics == 0 {
		t.Fatalf("panic storm surfaced no WorkerPanics: %+v", rep)
	}
	if rep.DurableIOErrors != 0 {
		t.Fatalf("fault-free durable leg saw I/O errors: %+v", rep)
	}
	if rep.DurableAcked == 0 {
		t.Fatalf("durable leg acknowledged nothing: %+v", rep)
	}
	if rep.RecoveredRows < rep.DurableAcked {
		t.Fatalf("recovery lost acknowledged batches: %+v", rep)
	}
}

func TestSoakFsyncStorm(t *testing.T) {
	rep := checkSoak(t, Config{Seed: 2, Scenario: failfs.FsyncStorm(2, 0.3)})
	if rep.DurableIOErrors == 0 {
		t.Fatalf("fsync storm injected no faults: %+v", rep)
	}
}

func TestSoakTornTail(t *testing.T) {
	rep := checkSoak(t, Config{Seed: 3, Scenario: failfs.TornTail(3, 0.3)})
	if rep.DurableIOErrors == 0 {
		t.Fatalf("torn-tail storm injected no faults: %+v", rep)
	}
}

func TestSoakSlowIO(t *testing.T) {
	rep := checkSoak(t, Config{
		Seed:          4,
		DurableRounds: 20,
		Scenario:      failfs.SlowIO(4, 0.5, 200*time.Microsecond),
	})
	// Slow I/O never fails operations; the leg must have fully acked.
	if rep.DurableIOErrors != 0 {
		t.Fatalf("slow-io failed operations: %+v", rep)
	}
}

func TestSoakComposedStorm(t *testing.T) {
	cfg := Config{
		Seed:       5,
		PanicStorm: true,
		Scenario: failfs.Compose(
			failfs.FsyncStorm(51, 0.2),
			failfs.TornTail(52, 0.15),
			failfs.SlowIO(53, 0.3, 100*time.Microsecond),
		),
	}
	if testing.Short() {
		cfg.Rounds = 60
		cfg.DurableRounds = 20
	}
	checkSoak(t, cfg)
}

// TestShortDeadlineSmoke is the CI smoke leg: every query surface under
// an already-expired deadline returns a clean typed error immediately,
// and under a 1ms deadline returns either a result or a typed error —
// never a panic, hang, or untyped failure.
func TestShortDeadlineSmoke(t *testing.T) {
	g := workload.New(9)
	tab, err := buildTable("smoke", g, 3000)
	if err != nil {
		t.Fatal(err)
	}
	tab.EnableCache(mmdb.CacheOptions{MinCostNs: -1})
	tab.EnableGovernor(governor.Options{MaxConcurrent: 4, MaxQueue: 8})
	ix, _ := tab.Index("a")
	sh, _ := tab.ShardedIndex("b")
	cVals, _ := tab.Column("c")
	list := cVals.Domain().Values()

	surfaces := map[string]func(ctx context.Context) error{
		"SelectRangeCtx": func(ctx context.Context) error {
			_, _, err := tab.SelectRangeCtx(ctx, "a", 0, math.MaxUint32, nil)
			return err
		},
		"SelectInCtx": func(ctx context.Context) error {
			_, _, err := tab.SelectInCtx(ctx, "c", list, nil)
			return err
		},
		"SelectWhereCtx": func(ctx context.Context) error {
			_, _, err := tab.SelectWhereCtx(ctx, []mmdb.RangePred{
				{Col: "a", Lo: 0, Hi: math.MaxUint32}, {Col: "b", Lo: 0, Hi: math.MaxUint32}}, nil)
			return err
		},
		"GroupAggregateCtx": func(ctx context.Context) error {
			_, err := mmdb.GroupAggregateCtx(ctx, tab, "c", "a", nil, nil)
			return err
		},
		"SelectEqualCtx": func(ctx context.Context) error {
			_, err := ix.SelectEqualCtx(ctx, 42)
			return err
		},
		"sharded SelectRangeCtx": func(ctx context.Context) error {
			_, err := sh.SelectRangeCtx(ctx, 0, math.MaxUint32)
			return err
		},
		"JoinWithCtx": func(ctx context.Context) error {
			_, err := mmdb.JoinWithCtx(ctx, tab, "b", ix, mmdb.JoinOptions{}, nil, nil)
			return err
		},
		"AppendRowsCtx": func(ctx context.Context) error {
			return tab.AppendRowsCtx(ctx, map[string][]uint32{"a": {1}, "b": {1}, "c": {1}})
		},
	}

	// Leg 1: expired deadline — typed error, always.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for name, run := range surfaces {
		if err := run(expired); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s under expired deadline: err = %v, want DeadlineExceeded", name, err)
		}
	}

	// Leg 2: 1ms deadline — success or a typed abort, nothing else.
	for name, run := range surfaces {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		ctx = governor.WithStride(ctx, 64)
		if o := classify(run(ctx)); o == outUnexpected {
			t.Fatalf("%s under 1ms deadline: untyped failure", name)
		}
		cancel()
	}
}
