package workload

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestSortedDistinct(t *testing.T) {
	g := New(1)
	for _, n := range []int{0, 1, 2, 100, 10000} {
		keys := g.SortedDistinct(n)
		if len(keys) != n {
			t.Fatalf("n=%d: got %d keys", n, len(keys))
		}
		if !IsStrictlyAscending(keys) {
			t.Errorf("n=%d: keys not strictly ascending", n)
		}
	}
}

func TestSortedDistinctDeterministic(t *testing.T) {
	a := New(42).SortedDistinct(1000)
	b := New(42).SortedDistinct(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSortedDistinctSeedsDiffer(t *testing.T) {
	a := New(1).SortedDistinct(100)
	b := New(2).SortedDistinct(100)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestSortedUniform(t *testing.T) {
	g := New(2)
	keys := g.SortedUniform(100000)
	if len(keys) != 100000 {
		t.Fatalf("got %d keys", len(keys))
	}
	if !IsStrictlyAscending(keys) {
		t.Fatal("keys not strictly ascending")
	}
	// Uniformity: the median should sit near the middle of the key space.
	mid := float64(keys[len(keys)/2]) / float64(MaxKey)
	if mid < 0.45 || mid > 0.55 {
		t.Errorf("median at %.3f of key space, want ≈0.5", mid)
	}
	if got := g.SortedUniform(0); got != nil {
		t.Error("n=0 should be nil")
	}
}

func TestSortedLinear(t *testing.T) {
	g := New(3)
	keys := g.SortedLinear(10000)
	if !IsStrictlyAscending(keys) {
		t.Fatal("linear keys not strictly ascending")
	}
	// Linearity: middle element should be near half of the last element.
	mid := float64(keys[len(keys)/2])
	last := float64(keys[len(keys)-1])
	ratio := mid / last
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("linear data set not linear: mid/last=%.3f", ratio)
	}
}

func TestSortedSkewed(t *testing.T) {
	g := New(4)
	keys := g.SortedSkewed(10000)
	if !IsStrictlyAscending(keys) {
		t.Fatal("skewed keys not strictly ascending")
	}
	// Skew: the median must sit well below half the max (mass near zero).
	mid := float64(keys[len(keys)/2])
	last := float64(keys[len(keys)-1])
	if mid/last > 0.4 {
		t.Errorf("skewed data set looks uniform: mid/last=%.3f", mid/last)
	}
}

func TestSortedWithDuplicates(t *testing.T) {
	g := New(5)
	keys := g.SortedWithDuplicates(10000, 4)
	if len(keys) != 10000 {
		t.Fatalf("got %d keys", len(keys))
	}
	if !IsSorted(keys) {
		t.Fatal("duplicate data set not sorted")
	}
	distinct := 1
	dups := 0
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[i-1] {
			distinct++
		} else {
			dups++
		}
	}
	if dups == 0 {
		t.Error("no duplicates generated")
	}
	if distinct < 1000 {
		t.Errorf("too few distinct values: %d", distinct)
	}
}

func TestLookupsAreMembers(t *testing.T) {
	g := New(6)
	keys := g.SortedDistinct(5000)
	q := g.Lookups(keys, 20000)
	if len(q) != 20000 {
		t.Fatalf("got %d lookups", len(q))
	}
	for _, k := range q {
		i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
		if i == len(keys) || keys[i] != k {
			t.Fatalf("lookup key %d not a member", k)
		}
	}
}

func TestLookupsEmpty(t *testing.T) {
	g := New(7)
	if got := g.Lookups(nil, 10); got != nil {
		t.Errorf("lookups on empty data should be nil, got %v", got)
	}
	if got := g.Lookups([]uint32{1}, 0); got != nil {
		t.Errorf("zero lookups should be nil, got %v", got)
	}
}

func TestZipfLookupsSkewed(t *testing.T) {
	g := New(8)
	keys := g.SortedDistinct(1000)
	q := g.ZipfLookups(keys, 50000, 1.5)
	counts := map[uint32]int{}
	for _, k := range q {
		counts[k]++
	}
	// The hottest key must dominate: far above the uniform expectation of 50.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 500 {
		t.Errorf("zipf lookups look uniform: hottest key hit %d times", max)
	}
}

func TestMissesAreAbsent(t *testing.T) {
	g := New(9)
	keys := g.SortedDistinct(5000)
	misses := g.Misses(keys, 1000)
	if len(misses) != 1000 {
		t.Fatalf("got %d misses", len(misses))
	}
	for _, k := range misses {
		i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
		if i < len(keys) && keys[i] == k {
			t.Fatalf("miss key %d is present", k)
		}
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	g := New(10)
	keys := g.SortedDistinct(2000)
	sh := g.Shuffled(keys)
	if len(sh) != len(keys) {
		t.Fatal("length changed")
	}
	back := make([]uint32, len(sh))
	copy(back, sh)
	sort.Slice(back, func(i, j int) bool { return back[i] < back[j] })
	for i := range back {
		if back[i] != keys[i] {
			t.Fatalf("not a permutation at %d", i)
		}
	}
	// And actually shuffled.
	moved := 0
	for i := range sh {
		if sh[i] != keys[i] {
			moved++
		}
	}
	if moved < len(keys)/2 {
		t.Errorf("shuffle barely moved anything: %d/%d", moved, len(keys))
	}
}

func TestForceStrictlyAscendingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		keys := make([]uint32, len(raw))
		for i, v := range raw {
			keys[i] = uint32(v)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		forceStrictlyAscending(keys)
		return IsStrictlyAscending(keys)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfLookupsEdgeCases(t *testing.T) {
	g := New(16)
	if got := g.ZipfLookups(nil, 10, 2); got != nil {
		t.Error("zipf on empty keys should be nil")
	}
	keys := g.SortedDistinct(100)
	if got := g.ZipfLookups(keys, 0, 2); got != nil {
		t.Error("zero zipf lookups should be nil")
	}
	// s ≤ 1 is clamped, not an error.
	got := g.ZipfLookups(keys, 100, 0.5)
	if len(got) != 100 {
		t.Fatalf("clamped skew returned %d lookups", len(got))
	}
}

func TestSortedWithDuplicatesEdgeCases(t *testing.T) {
	g := New(17)
	if got := g.SortedWithDuplicates(0, 3); got != nil {
		t.Error("n=0 should be nil")
	}
	// dup < 1 clamps to 1.
	keys := g.SortedWithDuplicates(100, 0)
	if len(keys) != 100 || !IsSorted(keys) {
		t.Error("dup=0 mishandled")
	}
}

func TestGeneratorsEmpty(t *testing.T) {
	g := New(18)
	if g.SortedLinear(0) != nil || g.SortedSkewed(0) != nil || g.SortedUniform(-1) != nil {
		t.Error("empty generators should return nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("SortedDistinct(-1) should panic")
		}
	}()
	g.SortedDistinct(-1)
}

func TestIsSortedHelpers(t *testing.T) {
	if !IsSorted([]uint32{1, 1, 2}) {
		t.Error("IsSorted failed on sorted-with-dup")
	}
	if IsStrictlyAscending([]uint32{1, 1, 2}) {
		t.Error("IsStrictlyAscending accepted a duplicate")
	}
	if IsSorted([]uint32{2, 1}) {
		t.Error("IsSorted accepted descending")
	}
}
