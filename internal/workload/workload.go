// Package workload generates the data sets and lookup streams used in the
// paper's evaluation (§6.1): sorted arrays of distinct random 4-byte integer
// keys, plus the variations the paper discusses — linearly distributed keys
// (where interpolation search shines), non-uniform/skewed keys (where it and
// naive hashing degrade), and duplicate-heavy keys (§3.6).
//
// All generators are deterministic given a seed, so every experiment in this
// repository is reproducible run-to-run.
package workload

import (
	"cssidx/internal/sortu32"
	"math"
	"math/rand"
	"sort"
)

// MaxKey bounds generated keys; one below ^uint32(0) so probes for
// "key just above the maximum" stay representable in tests.
const MaxKey = math.MaxUint32 - 1

// Gen produces data sets and lookup streams from a seeded source.
type Gen struct {
	rng *rand.Rand
}

// New returns a generator seeded with seed.
func New(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// SortedDistinct returns n distinct uint32 keys in ascending order, drawn
// uniformly at random — the paper's primary data set ("all the keys are
// distinct integers and are chosen randomly").
func (g *Gen) SortedDistinct(n int) []uint32 {
	if n < 0 {
		panic("workload: negative n")
	}
	if n == 0 {
		return nil
	}
	// Draw with a surplus, dedupe, top up until we have n distinct keys.
	seen := make(map[uint32]struct{}, n+n/8)
	keys := make([]uint32, 0, n)
	for len(keys) < n {
		k := uint32(g.rng.Int63n(MaxKey + 1))
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// SortedUniform returns n strictly ascending keys drawn uniformly from the
// key space.  Unlike SortedDistinct it avoids a dedup map, so it scales to
// the paper's 25-million-key experiments: collisions after sorting are
// nudged apart (+1), which perturbs a vanishing fraction of a uniform draw.
func (g *Gen) SortedUniform(n int) []uint32 {
	if n <= 0 {
		return nil
	}
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = uint32(g.rng.Int63n(MaxKey + 1))
	}
	sortu32.Sort(keys)
	forceStrictlyAscending(keys)
	return keys
}

// SortedLinear returns n keys forming an (almost) arithmetic progression with
// small jitter: the "data sets that behave linearly" on which interpolation
// search performs well.
func (g *Gen) SortedLinear(n int) []uint32 {
	if n <= 0 {
		return nil
	}
	keys := make([]uint32, n)
	step := uint64(MaxKey) / uint64(n+1)
	if step == 0 {
		step = 1
	}
	jitter := int64(step / 2)
	for i := range keys {
		base := uint64(i+1) * step
		if jitter > 0 {
			base += uint64(g.rng.Int63n(jitter))
		}
		if base > MaxKey {
			base = MaxKey
		}
		keys[i] = uint32(base)
	}
	forceStrictlyAscending(keys)
	return keys
}

// SortedSkewed returns n distinct keys whose *values* are clumped
// non-uniformly (quadratically stretched), the "non-uniform data" on which
// the paper reports interpolation search doing worse than binary search.
func (g *Gen) SortedSkewed(n int) []uint32 {
	if n <= 0 {
		return nil
	}
	keys := make([]uint32, n)
	for i := range keys {
		u := g.rng.Float64()
		// Square the uniform variate: mass piles up near zero, the tail
		// stretches; a linear interpolator's position estimate is badly off.
		v := uint64(u * u * float64(MaxKey))
		keys[i] = uint32(v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	forceStrictlyAscending(keys)
	return keys
}

// SortedWithDuplicates returns n ascending keys where each distinct value
// repeats with expected multiplicity dup (≥1) — the duplicate handling
// scenario of §3.6.
func (g *Gen) SortedWithDuplicates(n, dup int) []uint32 {
	if n <= 0 {
		return nil
	}
	if dup < 1 {
		dup = 1
	}
	keys := make([]uint32, 0, n)
	cur := uint32(g.rng.Int63n(1 << 16))
	for len(keys) < n {
		reps := 1 + g.rng.Intn(2*dup-1)
		for r := 0; r < reps && len(keys) < n; r++ {
			keys = append(keys, cur)
		}
		gap := uint32(1 + g.rng.Int63n(1<<12))
		if cur > MaxKey-gap {
			// Wrapped the key space; restart low but keep the array sorted by
			// rebuilding from what we have (extremely unlikely in practice).
			break
		}
		cur += gap
	}
	for len(keys) < n {
		keys = append(keys, cur)
	}
	return keys
}

// Lookups returns q keys sampled uniformly (with replacement) from keys —
// the paper's "100,000 searches on randomly chosen matching keys".
func (g *Gen) Lookups(keys []uint32, q int) []uint32 {
	if len(keys) == 0 || q <= 0 {
		return nil
	}
	out := make([]uint32, q)
	for i := range out {
		out[i] = keys[g.rng.Intn(len(keys))]
	}
	return out
}

// ZipfLookups returns q keys sampled from keys with Zipfian skew s (>1 means
// skew; the classic hot-key access pattern that stresses hash chains and
// rewards warm caches).
func (g *Gen) ZipfLookups(keys []uint32, q int, s float64) []uint32 {
	if len(keys) == 0 || q <= 0 {
		return nil
	}
	if s <= 1 {
		s = 1.0001
	}
	z := rand.NewZipf(g.rng, s, 1, uint64(len(keys)-1))
	out := make([]uint32, q)
	for i := range out {
		out[i] = keys[z.Uint64()]
	}
	return out
}

// Misses returns q keys guaranteed absent from the sorted slice keys,
// for negative-lookup experiments.
func (g *Gen) Misses(keys []uint32, q int) []uint32 {
	out := make([]uint32, 0, q)
	for len(out) < q {
		k := uint32(g.rng.Int63n(MaxKey + 1))
		i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
		if i < len(keys) && keys[i] == k {
			continue
		}
		out = append(out, k)
	}
	return out
}

// Shuffled returns a shuffled copy of keys (e.g. insertion order for
// structures built by repeated insertion).
func (g *Gen) Shuffled(keys []uint32) []uint32 {
	out := make([]uint32, len(keys))
	copy(out, keys)
	g.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// forceStrictlyAscending nudges equal neighbours apart so the slice is
// strictly ascending, preserving sortedness.  Used by generators whose raw
// draws may collide.
func forceStrictlyAscending(keys []uint32) {
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			keys[i] = keys[i-1] + 1
		}
	}
}

// IsSorted reports whether keys is in non-decreasing order.
func IsSorted(keys []uint32) bool {
	return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
}

// IsStrictlyAscending reports whether keys is strictly increasing
// (all distinct).
func IsStrictlyAscending(keys []uint32) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return false
		}
	}
	return true
}
