package failfs

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Named fault scenarios.  SetCrashAt/FailAt/ShortWriteAt target one
// numbered operation — precise, but a schedule built from numbers is
// brittle: it breaks the moment the code under test adds an fsync.  A
// Scenario instead decides the fate of each operation from its trace
// name ("write:db/t.wal", "sync-dir:db", …), so the same storm can be
// replayed against any workload.  The chaos harness (internal/chaostest)
// drives its soaks through the three canonical scenarios below:
// FsyncStorm, TornTail and SlowIO.

// Action is a Scenario's verdict on one operation.  The zero Action lets
// the operation proceed untouched.
type Action struct {
	// Err, when non-nil, fails the operation (which takes no effect).
	Err error
	// Short, on a write, applies a seeded-random prefix of the buffer
	// before failing — a torn in-flight write.  Ignored elsewhere.
	Short bool
	// Delay stalls the operation (and, as on a saturated device queue,
	// everything behind it) before it proceeds.
	Delay time.Duration
}

// Scenario is a reusable fault schedule keyed on operation names.
// Decide is called under the filesystem lock for every numbered
// operation; implementations must be deterministic for their seed and
// must not call back into the filesystem.
type Scenario interface {
	// Name identifies the scenario in logs and test output.
	Name() string
	// Decide returns the fate of operation n, whose trace name is op.
	Decide(op string, n int) Action
}

// SetScenario attaches a fault scenario to the filesystem; nil detaches.
// One-shot schedules (FailAt, ShortWriteAt, SetCrashAt) still apply and
// take precedence on their operation.
func (m *Mem) SetScenario(s Scenario) {
	m.mu.Lock()
	m.scenario = s
	m.mu.Unlock()
}

// applyScenario consults the attached scenario for operation n; m.mu held.
// Called from step after the one-shot schedules have passed.
func (m *Mem) applyScenario(name string, n int) error {
	if m.scenario == nil {
		return nil
	}
	act := m.scenario.Decide(name, n)
	if act.Delay > 0 {
		time.Sleep(act.Delay)
	}
	if act.Short && strings.HasPrefix(name, "write:") {
		m.short[n] = true
		return nil
	}
	if act.Err != nil {
		return fmt.Errorf("%s: %w", name, act.Err)
	}
	return nil
}

// funcScenario adapts a closure; the rng gives each scenario its own
// deterministic stream, advanced once per Decide under the fs lock.
type funcScenario struct {
	name string
	fn   func(rng *rand.Rand, op string, n int) Action
	rng  *rand.Rand
}

func (s *funcScenario) Name() string { return s.name }
func (s *funcScenario) Decide(op string, n int) Action {
	return s.fn(s.rng, op, n)
}

// FsyncStorm fails a rate fraction (0..1) of sync and sync-dir
// operations with ErrInjected: the flaky disk whose write cache is fine
// but whose flushes keep erroring.  Durable code must surface these as
// I/O errors without corrupting what was already durable.
func FsyncStorm(seed int64, rate float64) Scenario {
	return &funcScenario{
		name: "fsync-storm",
		rng:  rand.New(rand.NewSource(seed)),
		fn: func(rng *rand.Rand, op string, n int) Action {
			if !strings.HasPrefix(op, "sync:") && !strings.HasPrefix(op, "sync-dir:") {
				return Action{}
			}
			if rng.Float64() >= rate {
				return Action{}
			}
			return Action{Err: ErrInjected}
		},
	}
}

// TornTail short-writes a rate fraction (0..1) of writes: a random
// prefix of the buffer lands, the rest is lost, and the write reports
// ErrInjected.  The write-ahead log's record framing must detect and
// drop the torn tail on recovery.
func TornTail(seed int64, rate float64) Scenario {
	return &funcScenario{
		name: "torn-tail",
		rng:  rand.New(rand.NewSource(seed)),
		fn: func(rng *rand.Rand, op string, n int) Action {
			if !strings.HasPrefix(op, "write:") || rng.Float64() >= rate {
				return Action{}
			}
			return Action{Short: true}
		},
	}
}

// SlowIO stalls a rate fraction (0..1) of operations by a seeded
// duration up to max: the overloaded device whose queue backs up.  No
// operation fails — the scenario exists to stretch the durable paths'
// time under lock so deadline and cancellation storms land mid-I/O.
func SlowIO(seed int64, rate float64, max time.Duration) Scenario {
	return &funcScenario{
		name: "slow-io",
		rng:  rand.New(rand.NewSource(seed)),
		fn: func(rng *rand.Rand, op string, n int) Action {
			if max <= 0 || rng.Float64() >= rate {
				return Action{}
			}
			return Action{Delay: time.Duration(rng.Int63n(int64(max)) + 1)}
		},
	}
}

// Compose chains scenarios: each operation is offered to every scenario
// in order and the first non-zero Action wins, so a soak can run an
// fsync storm and a torn-tail schedule at once.
func Compose(scenarios ...Scenario) Scenario {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name()
	}
	return &composed{name: strings.Join(names, "+"), parts: scenarios}
}

type composed struct {
	name  string
	parts []Scenario
}

func (c *composed) Name() string { return c.name }
func (c *composed) Decide(op string, n int) Action {
	for _, s := range c.parts {
		if act := s.Decide(op, n); act != (Action{}) {
			return act
		}
	}
	return Action{}
}
