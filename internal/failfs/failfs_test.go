package failfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// write commits data to name on m with full durability (sync + dir sync).
func write(t *testing.T, m *Mem, name string, data []byte, durable bool) {
	t.Helper()
	f, err := m.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if durable {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if durable {
		if err := m.SyncDir(filepath.Dir(name)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemDurabilityModel(t *testing.T) {
	m := NewMem(1)
	write(t, m, "db/a", []byte("durable"), true)
	write(t, m, "db/b", []byte("volatile"), false)
	m.Crash()
	if got, err := ReadAll(m, "db/a"); err != nil || string(got) != "durable" {
		t.Fatalf("synced file lost: %q, %v", got, err)
	}
	if _, err := ReadAll(m, "db/b"); err == nil {
		t.Fatal("unsynced creation survived the crash")
	}
}

func TestMemTornTailStaysWithinUnsyncedSuffix(t *testing.T) {
	// The synced prefix must survive intact; the unsynced tail may
	// survive as any prefix, possibly corrupt in its final byte.
	for seed := int64(0); seed < 20; seed++ {
		m := NewMem(seed)
		write(t, m, "db/wal", []byte("SYNCED"), true)
		f, err := m.OpenAppend("db/wal")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("tail")); err != nil {
			t.Fatal(err)
		}
		m.Crash()
		got, err := ReadAll(m, "db/wal")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) < len("SYNCED") || len(got) > len("SYNCEDtail") {
			t.Fatalf("seed %d: impossible length %d", seed, len(got))
		}
		if string(got[:6]) != "SYNCED" {
			t.Fatalf("seed %d: synced prefix damaged: %q", seed, got)
		}
	}
}

func TestMemRenameDurability(t *testing.T) {
	m := NewMem(1)
	write(t, m, "db/old", []byte("x"), true)
	write(t, m, "db/new", []byte("tmpdata"), false)
	// Sync the new file's bytes but not the namespace change.
	f, err := m.OpenAppend("db/new")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("db/new", "db/old"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	// The rename was never dir-synced: db/old must still be the old file.
	if got, _ := ReadAll(m, "db/old"); string(got) != "x" {
		t.Fatalf("un-committed rename became visible: %q", got)
	}

	// Same again, with the dir sync: the rename must stick.
	m = NewMem(1)
	write(t, m, "db/old", []byte("x"), true)
	write(t, m, "db/new", []byte("tmpdata"), false)
	f, err = m.OpenAppend("db/new")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("db/new", "db/old"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("db"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got, _ := ReadAll(m, "db/old"); string(got) != "tmpdata" {
		t.Fatalf("committed rename lost: %q", got)
	}
}

func TestMemCrashAtFreezesEverything(t *testing.T) {
	m := NewMem(1)
	write(t, m, "db/a", []byte("one"), true)
	n := m.OpCount()
	m.SetCrashAt(n + 1) // the Write below
	f, err := m.Create("db/b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	// Everything after the crash point is down too.
	if _, err := m.Open("db/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("fs not down after crash: %v", err)
	}
	m.Crash()
	if got, err := ReadAll(m, "db/a"); err != nil || string(got) != "one" {
		t.Fatalf("pre-crash durable state lost: %q, %v", got, err)
	}
}

func TestMemStaleHandleAfterCrash(t *testing.T) {
	m := NewMem(1)
	f, err := m.Create("db/a")
	if err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("pre-crash handle still writable: %v", err)
	}
}

func TestMemInjectedFaults(t *testing.T) {
	m := NewMem(1)
	m.FailAt(1, nil) // the Write below
	f, err := m.Create("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	// One-shot: the retry succeeds.
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("fault was not one-shot: %v", err)
	}

	m2 := NewMem(7)
	m2.ShortWriteAt(1)
	f2, err := m2.Create("db/a")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f2.Write([]byte("0123456789"))
	if err == nil || n >= 10 {
		t.Fatalf("short write applied %d bytes, err %v", n, err)
	}
}

func TestMemTraceDeterminism(t *testing.T) {
	run := func() []string {
		m := NewMem(3)
		write(t, m, "db/a", []byte("abc"), true)
		write(t, m, "db/b", []byte("def"), false)
		return m.Trace()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "f")
	f, err := OS.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(OS, name)
	if err != nil || string(got) != "hello" {
		t.Fatalf("%q, %v", got, err)
	}
	names, err := OS.List(dir)
	if err != nil || len(names) != 1 || names[0] != "f" {
		t.Fatalf("List: %v, %v", names, err)
	}
	ap, err := OS.OpenAppend(name)
	if err != nil {
		t.Fatal(err)
	}
	if data, err := io.ReadAll(ap); err != nil || string(data) != "hello" {
		t.Fatalf("append-mode read: %q, %v", data, err)
	}
	if _, err := ap.Write([]byte("!")); err != nil {
		t.Fatal(err)
	}
	if sz, err := ap.Size(); err != nil || sz != 6 {
		t.Fatalf("Size: %d, %v", sz, err)
	}
	if err := ap.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(name); err != nil || st.Size() != 5 {
		t.Fatalf("truncate: %v, %v", st, err)
	}
}
