package failfs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// driveWAL runs a small create/write/sync workload and reports how many
// of each outcome it saw.
func driveWAL(t *testing.T, m *Mem) (writes, writeErrs, syncs, syncErrs int) {
	t.Helper()
	f, err := m.OpenAppend("db/t.wal")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	for i := 0; i < 200; i++ {
		if _, err := f.Write(payload); err != nil {
			writeErrs++
		} else {
			writes++
		}
		if err := f.Sync(); err != nil {
			syncErrs++
		} else {
			syncs++
		}
	}
	return
}

func TestFsyncStormFailsOnlySyncs(t *testing.T) {
	m := NewMem(1)
	m.SetScenario(FsyncStorm(7, 0.5))
	writes, writeErrs, syncs, syncErrs := driveWAL(t, m)
	if writeErrs != 0 {
		t.Fatalf("fsync-storm failed %d writes", writeErrs)
	}
	if syncErrs == 0 || syncs == 0 {
		t.Fatalf("fsync-storm at rate 0.5: %d sync errors, %d successes", syncErrs, syncs)
	}
	_ = writes
	// Failed syncs must not have destroyed previously durable bytes.
	if m.DurableLen("db/t.wal") < 0 {
		// never SyncDir'd: not durably linked, which is correct
		t.Log("file not durably linked (no SyncDir) — expected")
	}
}

func TestTornTailShortWrites(t *testing.T) {
	m := NewMem(2)
	m.SetScenario(TornTail(7, 0.3))
	f, err := m.OpenAppend("db/t.wal")
	if err != nil {
		t.Fatal(err)
	}
	var torn int
	var expect int64
	for i := 0; i < 100; i++ {
		n, err := f.Write([]byte("0123456789"))
		expect += int64(n)
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("torn write surfaced as %v, want ErrInjected", err)
			}
			if n >= 10 {
				t.Fatalf("torn write applied %d of 10 bytes", n)
			}
			torn++
		} else if n != 10 {
			t.Fatalf("clean write applied %d of 10 bytes", n)
		}
	}
	if torn == 0 {
		t.Fatal("torn-tail at rate 0.3 tore nothing in 100 writes")
	}
	// The reported byte counts must agree exactly with the file image.
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size != expect {
		t.Fatalf("file size %d, reported bytes %d", size, expect)
	}
}

func TestSlowIODelaysWithoutFailing(t *testing.T) {
	m := NewMem(3)
	m.SetScenario(SlowIO(7, 1.0, 100*time.Microsecond))
	start := time.Now()
	writes, writeErrs, syncs, syncErrs := driveWAL(t, m)
	if writeErrs != 0 || syncErrs != 0 {
		t.Fatalf("slow-io failed operations: %d write errs, %d sync errs", writeErrs, syncErrs)
	}
	if writes != 200 || syncs != 200 {
		t.Fatalf("slow-io lost operations: %d writes, %d syncs", writes, syncs)
	}
	// 401 delayed ops at up to 100µs each: elapsed must show the stall.
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("slow-io added no measurable delay (%v)", elapsed)
	}
}

func TestScenarioDeterministic(t *testing.T) {
	run := func() (int, int) {
		m := NewMem(4)
		m.SetScenario(Compose(FsyncStorm(11, 0.4), TornTail(12, 0.2)))
		_, writeErrs, _, syncErrs := driveWAL(t, m)
		return writeErrs, syncErrs
	}
	w1, s1 := run()
	w2, s2 := run()
	if w1 != w2 || s1 != s2 {
		t.Fatalf("same seeds, different storms: (%d,%d) vs (%d,%d)", w1, s1, w2, s2)
	}
	if w1 == 0 || s1 == 0 {
		t.Fatalf("composed scenario idle: %d write errs, %d sync errs", w1, s1)
	}
}

func TestScenarioYieldsToOneShotSchedules(t *testing.T) {
	m := NewMem(5)
	m.SetScenario(SlowIO(7, 1.0, time.Microsecond))
	custom := errors.New("custom fault")
	// Find the op number of the first write by rehearsal.
	r := NewMem(5)
	rf, _ := r.OpenAppend("db/t.wal")
	rf.Write([]byte("x"))
	var writeOp = -1
	for i, op := range r.Trace() {
		if strings.HasPrefix(op, "write:") {
			writeOp = i
			break
		}
	}
	if writeOp < 0 {
		t.Fatal("no write in rehearsal trace")
	}
	m.FailAt(writeOp, custom)
	f, err := m.OpenAppend("db/t.wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, custom) {
		t.Fatalf("FailAt overridden by scenario: %v", err)
	}
}

func TestComposeNames(t *testing.T) {
	s := Compose(FsyncStorm(1, 0.1), TornTail(2, 0.1), SlowIO(3, 0.1, time.Microsecond))
	if s.Name() != "fsync-storm+torn-tail+slow-io" {
		t.Fatalf("composed name %q", s.Name())
	}
}
