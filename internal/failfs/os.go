package failfs

import (
	"os"

	"cssidx/internal/telemetry"
)

// Per-operation counters over the production filesystem: what the engine
// actually asks of the OS (how many fsyncs a workload's durability policy
// costs, how write-heavy a checkpoint is).  One atomic load each while
// telemetry is off.
var (
	ctrOpen    = telemetry.C(`failfs_ops_total{op="open"}`)
	ctrCreate  = telemetry.C(`failfs_ops_total{op="create"}`)
	ctrRead    = telemetry.C(`failfs_ops_total{op="read"}`)
	ctrWrite   = telemetry.C(`failfs_ops_total{op="write"}`)
	ctrSync    = telemetry.C(`failfs_ops_total{op="sync"}`)
	ctrSyncDir = telemetry.C(`failfs_ops_total{op="syncdir"}`)
	ctrRename  = telemetry.C(`failfs_ops_total{op="rename"}`)
	ctrRemove  = telemetry.C(`failfs_ops_total{op="remove"}`)
)

// OS is the production filesystem: a veneer over the os package.  Every
// method maps to the obvious syscall; SyncDir opens the directory and
// fsyncs it, which is how a rename or create is made crash-durable on
// POSIX systems.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	ctrCreate.Inc()
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	ctrCreate.Inc()
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Open(name string) (File, error) {
	ctrOpen.Inc()
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) OpenAppend(name string) (File, error) {
	ctrOpen.Inc()
	f, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldname, newname string) error {
	ctrRename.Inc()
	return os.Rename(oldname, newname)
}

func (osFS) Remove(name string) error {
	ctrRemove.Inc()
	return os.Remove(name)
}

func (osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) SyncDir(dir string) error {
	ctrSyncDir.Inc()
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

type osFile struct{ f *os.File }

func (o osFile) Read(p []byte) (int, error) {
	ctrRead.Inc()
	return o.f.Read(p)
}

func (o osFile) Write(p []byte) (int, error) {
	ctrWrite.Inc()
	return o.f.Write(p)
}

func (o osFile) Close() error { return o.f.Close() }

func (o osFile) Sync() error {
	ctrSync.Inc()
	return o.f.Sync()
}
func (o osFile) Truncate(size int64) error { return o.f.Truncate(size) }
func (o osFile) Name() string              { return o.f.Name() }

func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
