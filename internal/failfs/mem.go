package failfs

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Mem is the deterministic fault-injection filesystem.  It models two
// images of the world:
//
//   - the volatile image: what the running process observes — every
//     write, create, rename, remove is visible immediately;
//   - the durable image: what survives a crash — file bytes become
//     durable at Sync, namespace entries (which names exist and which
//     node they point to) become durable at SyncDir on their directory.
//
// Every operation is a numbered failpoint.  SetCrashAt(n) makes the nth
// operation — and every operation after it — return ErrCrashed, freezing
// both images at the crash instant; Crash() then applies the durability
// model (volatile bytes are lost, except that the unsynced tail of a
// surviving file may persist partially and corruptly — a torn write,
// chosen by the seeded RNG) and revives the filesystem so recovery code
// can reopen it.  FailAt and ShortWriteAt inject non-fatal faults at a
// numbered operation instead.
//
// All methods are safe for concurrent use; the operation numbering is a
// single global sequence.
type Mem struct {
	mu     sync.Mutex
	rng    *rand.Rand
	gen    int // bumped by Crash: handles from before a crash are dead
	ops    int
	trace  []string
	crash  int // op index that crashes; -1 = never
	down   bool
	fail   map[int]error
	short  map[int]bool
	tmpSeq int

	// scenario, when set, decides a fate for every operation the one-shot
	// schedules above left alone (see scenario.go).
	scenario Scenario

	live    map[string]*memNode
	durable map[string]*memNode
}

// memNode is one file's contents.  data is the volatile image; synced is
// the durable image (the content as of the last Sync).  Node identity
// travels through renames, so a synced file keeps its bytes under its
// new name.
type memNode struct {
	data   []byte
	synced []byte
}

// NewMem creates an empty Mem filesystem; seed drives every
// nondeterministic choice (torn-tail lengths, corruption) so a run is
// exactly reproducible.
func NewMem(seed int64) *Mem {
	return &Mem{
		rng:     rand.New(rand.NewSource(seed)),
		crash:   -1,
		fail:    map[int]error{},
		short:   map[int]bool{},
		live:    map[string]*memNode{},
		durable: map[string]*memNode{},
	}
}

// SetCrashAt schedules the crash at the nth operation (0-based); -1
// cancels.  The crashing operation takes no effect and returns
// ErrCrashed, as does everything after it until Crash().
func (m *Mem) SetCrashAt(n int) {
	m.mu.Lock()
	m.crash = n
	m.mu.Unlock()
}

// FailAt schedules err (ErrInjected when nil) as the result of the nth
// operation.  Unlike a crash, the fault is one-shot: the operation takes
// no effect, and the filesystem keeps running.
func (m *Mem) FailAt(n int, err error) {
	if err == nil {
		err = ErrInjected
	}
	m.mu.Lock()
	m.fail[n] = err
	m.mu.Unlock()
}

// ShortWriteAt makes the nth operation, when it is a Write, apply only a
// seeded-random prefix of its buffer before failing — the torn in-flight
// write a caller must detect or roll back.
func (m *Mem) ShortWriteAt(n int) {
	m.mu.Lock()
	m.short[n] = true
	m.mu.Unlock()
}

// OpCount reports how many operations have run (or been refused); a
// fault-free rehearsal's OpCount enumerates the crash schedule.
func (m *Mem) OpCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Trace returns the name of every operation so far, in order: the
// failpoint schedule by name ("write:db/wal", "sync-dir:db", …).
func (m *Mem) Trace() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.trace...)
}

// Downed reports whether the scheduled crash point has been reached.
func (m *Mem) Downed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down
}

// step numbers one operation and applies the schedule; m.mu held.
func (m *Mem) step(name string) error {
	if m.down {
		return ErrCrashed
	}
	n := m.ops
	m.ops++
	m.trace = append(m.trace, name)
	if n == m.crash {
		m.down = true
		return ErrCrashed
	}
	if err, ok := m.fail[n]; ok {
		delete(m.fail, n)
		return fmt.Errorf("%s: %w", name, err)
	}
	if m.short[n] {
		return nil // ShortWriteAt owns this op; Write applies the tear
	}
	return m.applyScenario(name, n)
}

// Crash applies the durability model and revives the filesystem:
//
//   - the namespace reverts to the last SyncDir-committed entries;
//   - each surviving file reverts to its synced bytes, except that when
//     the volatile image had appended past them, a seeded-random prefix
//     of the unsynced tail survives, its final byte possibly corrupted
//     (a torn write);
//   - every File handle opened before the crash goes stale (ErrCrashed).
//
// The crash schedule is cleared; recovery code may now reopen files.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gen++
	m.down = false
	m.crash = -1
	m.live = map[string]*memNode{}
	for name, n := range m.durable {
		kept := append([]byte(nil), n.synced...)
		if len(n.data) > len(n.synced) && bytes.HasPrefix(n.data, n.synced) {
			tail := n.data[len(n.synced):]
			keep := m.rng.Intn(len(tail) + 1)
			kept = append(kept, tail[:keep]...)
			if keep > 0 && m.rng.Intn(2) == 0 {
				kept[len(kept)-1] ^= 0x5A // torn write: trailing garbage
			}
		}
		node := &memNode{data: kept, synced: append([]byte(nil), kept...)}
		m.live[name] = node
		m.durable[name] = node
	}
}

// DurableLen reports the synced length of name, or -1 when name is not
// durably linked: a test probe, not a numbered operation.
func (m *Mem) DurableLen(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.durable[name]
	if !ok {
		return -1
	}
	return len(n.synced)
}

// --- FS implementation -------------------------------------------------------

func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("create:" + name); err != nil {
		return nil, err
	}
	n := &memNode{}
	m.live[name] = n
	return &memFile{fs: m, node: n, name: name, gen: m.gen}, nil
}

func (m *Mem) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("create-temp:" + filepath.Join(dir, pattern)); err != nil {
		return nil, err
	}
	m.tmpSeq++
	base := pattern
	if i := strings.LastIndexByte(pattern, '*'); i >= 0 {
		base = pattern[:i] + fmt.Sprintf("%06d", m.tmpSeq) + pattern[i+1:]
	} else {
		base = pattern + fmt.Sprintf("%06d", m.tmpSeq)
	}
	name := filepath.Join(dir, base)
	n := &memNode{}
	m.live[name] = n
	return &memFile{fs: m, node: n, name: name, gen: m.gen}, nil
}

func (m *Mem) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("open:" + name); err != nil {
		return nil, err
	}
	n, ok := m.live[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &memFile{fs: m, node: n, name: name, gen: m.gen, rdonly: true}, nil
}

func (m *Mem) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("open-append:" + name); err != nil {
		return nil, err
	}
	n, ok := m.live[name]
	if !ok {
		n = &memNode{}
		m.live[name] = n
	}
	return &memFile{fs: m, node: n, name: name, gen: m.gen}, nil
}

func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("rename:" + oldname + "->" + newname); err != nil {
		return err
	}
	n, ok := m.live[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(m.live, oldname)
	m.live[newname] = n
	return nil
}

func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("remove:" + name); err != nil {
		return err
	}
	if _, ok := m.live[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.live, name)
	return nil
}

func (m *Mem) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("list:" + dir); err != nil {
		return nil, err
	}
	var names []string
	for name := range m.live {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll is a numbered no-op: Mem's namespace is flat, directories
// exist implicitly (but the failpoint still counts, so crash schedules
// cover it).
func (m *Mem) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.step("mkdir:" + dir)
}

func (m *Mem) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("sync-dir:" + dir); err != nil {
		return err
	}
	for name := range m.durable {
		if filepath.Dir(name) == dir {
			if _, ok := m.live[name]; !ok {
				delete(m.durable, name)
			}
		}
	}
	for name, n := range m.live {
		if filepath.Dir(name) == dir {
			m.durable[name] = n
		}
	}
	return nil
}

// --- File implementation -----------------------------------------------------

type memFile struct {
	fs     *Mem
	node   *memNode
	name   string
	gen    int
	off    int
	closed bool
	rdonly bool
}

// check numbers the operation and validates the handle; fs.mu held.
func (f *memFile) check(op string) error {
	if err := f.fs.step(op + ":" + f.name); err != nil {
		return err
	}
	if f.gen != f.fs.gen {
		return ErrCrashed // handle predates the crash
	}
	if f.closed {
		return &fs.PathError{Op: op, Path: f.name, Err: fs.ErrClosed}
	}
	return nil
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check("read"); err != nil {
		return 0, err
	}
	if f.off >= len(f.node.data) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.off:])
	f.off += n
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	opn := f.fs.ops // the number this write will take
	if err := f.check("write"); err != nil {
		return 0, err
	}
	if f.rdonly {
		return 0, &fs.PathError{Op: "write", Path: f.name, Err: fs.ErrPermission}
	}
	if f.fs.short[opn] {
		delete(f.fs.short, opn)
		k := 0
		if len(p) > 0 {
			k = f.fs.rng.Intn(len(p))
		}
		f.node.data = append(f.node.data, p[:k]...)
		return k, fmt.Errorf("write:%s: %w (short write, %d of %d bytes)", f.name, ErrInjected, k, len(p))
	}
	f.node.data = append(f.node.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check("sync"); err != nil {
		return err
	}
	f.node.synced = append(f.node.synced[:0], f.node.data...)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check("truncate"); err != nil {
		return err
	}
	if size < 0 || size > int64(len(f.node.data)) {
		return &fs.PathError{Op: "truncate", Path: f.name, Err: fs.ErrInvalid}
	}
	f.node.data = f.node.data[:size]
	if int64(len(f.node.synced)) > size {
		f.node.synced = f.node.synced[:size]
	}
	if f.off > int(size) {
		f.off = int(size)
	}
	return nil
}

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check("size"); err != nil {
		return 0, err
	}
	return int64(len(f.node.data)), nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.check("close"); err != nil {
		return err
	}
	f.closed = true
	return nil
}

func (f *memFile) Name() string { return f.name }
