// Package failfs is the filesystem seam under every durable code path:
// snapshot saves (persist.go, internal/shard), the write-ahead log
// (internal/wal), and the durable table (internal/mmdb).  Production code
// runs against OS, a thin veneer over the os package; tests run against
// Mem, an in-memory filesystem that models crash durability exactly —
// written bytes are volatile until Sync, namespace changes (create,
// rename, remove) are volatile until SyncDir — and injects faults
// (errors, short writes, whole-process crashes) at deterministic,
// numbered operation points.
//
// The model is deliberately conservative: nothing is durable unless the
// code explicitly synced it, and the unsynced tail of a file may survive
// a crash partially or corruptly (a torn write).  Code that recovers
// correctly under this model recovers on any real filesystem that honors
// fsync.
package failfs

import (
	"errors"
	"io"
)

// ErrCrashed is returned by every operation of a Mem filesystem once its
// scheduled crash point is reached: the simulated machine is down, and
// stays down until Crash() applies the durability model and revives it.
var ErrCrashed = errors.New("failfs: simulated crash")

// ErrInjected is the default error returned at a FailAt-scheduled
// operation: a transient fault (disk error, interrupted syscall) that the
// caller must propagate or recover from, distinct from a crash.
var ErrInjected = errors.New("failfs: injected fault")

// FS is the filesystem surface durable code writes through.  All paths
// are interpreted by the implementation; the OS implementation passes
// them to the os package verbatim.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// CreateTemp creates a new unique file in dir, with a name built
	// from pattern by replacing the final "*" (or appending when there
	// is none), like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenAppend opens name for reading and appending, creating it if
	// missing: the write-ahead-log open mode (replay reads from the
	// start, appends land at the end).
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname's file.  The
	// rename is volatile until SyncDir on the containing directory.
	Rename(oldname, newname string) error
	// Remove unlinks name (volatile until SyncDir).
	Remove(name string) error
	// List returns the names (not full paths) of the files in dir.
	List(dir string) ([]string, error)
	// MkdirAll ensures dir (and its parents) exist.
	MkdirAll(dir string) error
	// SyncDir makes dir's current entries durable: the fsync-the-
	// directory step that commits a Create, Rename or Remove.
	SyncDir(dir string) error
}

// File is one open file.  Reads consume a private cursor from the start;
// writes always append (every durable-path writer in this repo is
// sequential).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's written bytes to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes (used to drop a torn
	// write-ahead-log tail).
	Truncate(size int64) error
	// Size reports the file's current length in bytes.
	Size() (int64, error)
	// Name returns the path the file was opened under.
	Name() string
}

// ReadAll reads the whole of name through fsys.
func ReadAll(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}
