package analytic

import (
	"math"
	"testing"
)

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.R != 4 || p.K != 4 || p.P != 4 || p.N != 10_000_000 || p.H != 1.2 || p.C != 64 || p.S != 1 {
		t.Errorf("defaults diverge from Table 1: %+v", p)
	}
	if p.M() != 16 {
		t.Errorf("m=%d, want 16 slots for a 64-byte line", p.M())
	}
}

func TestSpaceModelTypicalValues(t *testing.T) {
	// Figure 7's "Typical Value" column (n=10⁷): full CSS 2.5 MB, level CSS
	// 2.7 MB, B+ 5.7 MB, hash 8 MB indirect / 48 MB direct, T-tree 11.4 MB
	// indirect / 51.4 MB direct.  (Paper MB = 10⁶ bytes.)
	p := DefaultParams()
	const MB = 1e6
	cases := []struct {
		m        Method
		indirect float64
		direct   float64
	}{
		{BinarySearch, 0, 0},
		{InterpolationSearch, 0, 0},
		{FullCSS, 2.5 * MB, 2.5 * MB},
		{LevelCSS, 2.67 * MB, 2.67 * MB},
		{BPlusTree, 5.7 * MB, 5.7 * MB},
		{Hash, 8 * MB, 48 * MB},
		{TTree, 11.4 * MB, 51.4 * MB},
	}
	for _, c := range cases {
		gotI := SpaceIndirect(c.m, p)
		gotD := SpaceDirect(c.m, p)
		if math.Abs(gotI-c.indirect) > 0.05*MB+0.02*c.indirect {
			t.Errorf("%v indirect space=%.2f MB, paper %.2f MB", c.m, gotI/MB, c.indirect/MB)
		}
		if math.Abs(gotD-c.direct) > 0.05*MB+0.02*c.direct {
			t.Errorf("%v direct space=%.2f MB, paper %.2f MB", c.m, gotD/MB, c.direct/MB)
		}
	}
}

func TestSpaceOrderingMatchesFigure7(t *testing.T) {
	// CSS < B+ < hash(indirect) < T-tree(indirect); binary search free.
	p := DefaultParams()
	if !(SpaceIndirect(FullCSS, p) < SpaceIndirect(LevelCSS, p)) {
		t.Error("full CSS should be smaller than level CSS")
	}
	if !(SpaceIndirect(LevelCSS, p) < SpaceIndirect(BPlusTree, p)) {
		t.Error("level CSS should be smaller than B+")
	}
	if !(SpaceIndirect(BPlusTree, p) < SpaceIndirect(Hash, p)) {
		t.Error("B+ should be smaller than hash")
	}
	if !(SpaceIndirect(Hash, p) < SpaceIndirect(TTree, p)) {
		t.Error("hash(indirect) should be smaller than T-tree(indirect)")
	}
}

func TestSpaceScalesLinearlyInN(t *testing.T) {
	// Figure 8: all curves are linear in n.
	p := DefaultParams()
	p2 := p
	p2.N = 3 * p.N
	for _, m := range Methods() {
		a, b := SpaceIndirect(m, p), SpaceIndirect(m, p2)
		if a == 0 {
			if b != 0 {
				t.Errorf("%v: zero-space method grew", m)
			}
			continue
		}
		if math.Abs(b/a-3) > 1e-9 {
			t.Errorf("%v: space not linear in n: ratio %.3f", m, b/a)
		}
	}
}

func TestRIDOrderColumn(t *testing.T) {
	for _, m := range Methods() {
		want := m != Hash
		if got := SupportsRIDOrder(m); got != want {
			t.Errorf("%v: RID-ordered access = %v", m, got)
		}
	}
}

func TestTimeModelStructure(t *testing.T) {
	p := DefaultParams()
	rows := TimeModel(p)
	byMethod := map[Method]TimeRow{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	bin, ok1 := byMethod[BinarySearch]
	full, ok2 := byMethod[FullCSS]
	level, ok3 := byMethod[LevelCSS]
	bp, ok4 := byMethod[BPlusTree]
	tt, ok5 := byMethod[TTree]
	if !(ok1 && ok2 && ok3 && ok4 && ok5) {
		t.Fatalf("missing rows: %v", rows)
	}
	// Figure 6's orderings at m=16, n=10⁷:
	if !(full.CacheMisses < bp.CacheMisses) {
		t.Errorf("full CSS misses %.2f should be < B+ %.2f", full.CacheMisses, bp.CacheMisses)
	}
	if !(bp.CacheMisses < bin.CacheMisses) {
		t.Errorf("B+ misses %.2f should be < binary %.2f", bp.CacheMisses, bin.CacheMisses)
	}
	if math.Abs(tt.CacheMisses-log2(float64(p.N)/16)) > 1e-9 {
		t.Errorf("T-tree misses %.2f, want log2(n/m)", tt.CacheMisses)
	}
	// Branching factors: CSS full m+1=17, level m=16, B+ m/2=8, others 2.
	if full.Branching != 17 || level.Branching != 16 || bp.Branching != 8 || bin.Branching != 2 {
		t.Errorf("branching factors wrong: %+v %+v %+v %+v", full, level, bp, bin)
	}
	// Total comparisons ≈ log2 n for every method except full CSS slightly more.
	want := log2(float64(p.N))
	for _, r := range []TimeRow{bin, level, bp, tt} {
		if math.Abs(r.TotalCmps-want) > 1e-9 {
			t.Errorf("%v total comparisons %.2f, want %.2f", r.Method, r.TotalCmps, want)
		}
	}
	if full.TotalCmps <= want {
		t.Errorf("full CSS total comparisons %.2f should exceed log2 n %.2f", full.TotalCmps, want)
	}
}

func TestTimeModelLargeNodesDegradeToBinarySearch(t *testing.T) {
	// §5.1: "as m gets larger, the number of cache misses for all the
	// methods approaches log₂ n."
	small := DefaultParams()
	big := small
	big.S = 64 // 4096-byte nodes, m=1024
	rowsSmall := TimeModel(small)
	rowsBig := TimeModel(big)
	find := func(rows []TimeRow, m Method) TimeRow {
		for _, r := range rows {
			if r.Method == m {
				return r
			}
		}
		t.Fatalf("row %v missing", m)
		return TimeRow{}
	}
	binMisses := find(rowsBig, BinarySearch).CacheMisses
	cssSmall := find(rowsSmall, FullCSS).CacheMisses
	cssBig := find(rowsBig, FullCSS).CacheMisses
	if cssBig <= cssSmall {
		t.Errorf("larger nodes should cost more misses: %.2f vs %.2f", cssBig, cssSmall)
	}
	if cssBig < 0.5*binMisses {
		t.Errorf("huge nodes should approach binary search: css %.2f vs binary %.2f", cssBig, binMisses)
	}
}

func TestLevelFullRatiosMatchFigure5(t *testing.T) {
	ratios := LevelFullRatios(60)
	if len(ratios) == 0 {
		t.Fatal("no ratios")
	}
	for _, r := range ratios {
		// Figure 5: the comparison ratio is < 1 (level wins comparisons),
		// the cache-access ratio > 1 (level loses accesses); both → 1 as m
		// grows.
		if r.Comparison >= 1 {
			t.Errorf("m=%d: comparison ratio %.4f ≥ 1", r.M, r.Comparison)
		}
		if r.CacheAcc <= 1 {
			t.Errorf("m=%d: cache-access ratio %.4f ≤ 1", r.M, r.CacheAcc)
		}
	}
	first, last := ratios[0], ratios[len(ratios)-1]
	if !(last.Comparison > first.Comparison && last.CacheAcc < first.CacheAcc) {
		t.Errorf("ratios should converge toward 1: first %+v last %+v", first, last)
	}
}

func TestFrontier(t *testing.T) {
	pts := []Point{
		{Method: BinarySearch, Space: 0, Time: 10},
		{Method: FullCSS, Space: 5, Time: 3},
		{Method: BPlusTree, Space: 12, Time: 4},  // dominated by FullCSS? space 12>5, time 4>3 → dominated
		{Method: TTree, Space: 20, Time: 9},      // dominated
		{Method: Hash, Space: 100, Time: 1},      // frontier (fastest)
		{Method: LevelCSS, Space: 6, Time: 2.95}, // frontier
	}
	f := Frontier(pts)
	onFrontier := map[Method]bool{}
	for _, p := range f {
		onFrontier[p.Method] = true
	}
	for _, want := range []Method{BinarySearch, FullCSS, Hash, LevelCSS} {
		if !onFrontier[want] {
			t.Errorf("%v missing from frontier %v", want, f)
		}
	}
	for _, not := range []Method{BPlusTree, TTree} {
		if onFrontier[not] {
			t.Errorf("%v should be dominated", not)
		}
	}
	// Frontier is sorted by time and strictly decreasing in space.
	for i := 1; i < len(f); i++ {
		if f[i].Time < f[i-1].Time || f[i].Space >= f[i-1].Space {
			t.Errorf("frontier not a stepped line: %v", f)
		}
	}
}

func TestDominates(t *testing.T) {
	a := Point{Space: 1, Time: 1}
	b := Point{Space: 2, Time: 2}
	if !Dominates(a, b) || Dominates(b, a) {
		t.Error("dominance backwards")
	}
	if Dominates(a, a) {
		t.Error("a point must not dominate itself")
	}
}

func TestMethodStrings(t *testing.T) {
	for _, m := range Methods() {
		if m.String() == "" {
			t.Errorf("method %d has empty name", int(m))
		}
	}
}
