// Package analytic implements the closed-form time and space models of the
// paper's §5 and the derived curves of Figures 5–8, plus the dominance
// ("stepped line") analysis of §7.
//
// The models are symbolic in the Table 1 parameters, so the same code
// renders the paper's typical values (R=K=P=4 bytes, n=10⁷, h=1.2, c=64 B,
// s=1) and any other configuration.
package analytic

import (
	"fmt"
	"math"
	"sort"
)

// Params are the Table 1 parameters.
type Params struct {
	R int     // bytes per record identifier
	K int     // bytes per key
	P int     // bytes per child pointer
	N int     // number of records indexed
	H float64 // hashing fudge factor (table is H× raw data)
	C int     // cache line size in bytes
	S int     // node size in cache lines
}

// DefaultParams returns the paper's Table 1 typical values.
func DefaultParams() Params {
	return Params{R: 4, K: 4, P: 4, N: 10_000_000, H: 1.2, C: 64, S: 1}
}

// M returns the slots per node implied by the node size: s·c/K.
func (p Params) M() int { return p.S * p.C / p.K }

// Method identifies an indexing method in the models.
type Method int

// The methods of Figures 6–8, in the paper's row order.
const (
	BinarySearch Method = iota
	InterpolationSearch
	TTree
	BPlusTree
	FullCSS
	LevelCSS
	Hash
	numMethods
)

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case BinarySearch:
		return "binary search"
	case InterpolationSearch:
		return "interpolation search"
	case TTree:
		return "T-trees"
	case BPlusTree:
		return "B+-trees"
	case FullCSS:
		return "full CSS-trees"
	case LevelCSS:
		return "level CSS-trees"
	case Hash:
		return "hash table"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Methods lists all modelled methods in paper order.
func Methods() []Method {
	ms := make([]Method, numMethods)
	for i := range ms {
		ms[i] = Method(i)
	}
	return ms
}

// log2 is log₂ x.
func log2(x float64) float64 { return math.Log2(x) }

// logB is log_base x.
func logB(base, x float64) float64 { return math.Log(x) / math.Log(base) }

// --- Figure 6: time analysis ---------------------------------------------

// TimeRow is one row of Figure 6's first table: structural counts per
// method for slots-per-node m over n keys.
type TimeRow struct {
	Method       Method
	Branching    float64 // branching factor
	Levels       float64 // number of levels traversed
	CmpsInternal float64 // comparisons per internal node
	CmpsLeaf     float64 // comparisons per leaf node
	TotalCmps    float64 // total comparisons for one lookup
	CacheMisses  float64 // cache misses per lookup (cold, node ≤/≥ line per §5.1)
}

// TimeModel evaluates Figure 6 for the given parameters.  It returns rows
// for the tree/array methods (hashing is constant-time and not in the
// paper's table).
func TimeModel(p Params) []TimeRow {
	n := float64(p.N)
	m := float64(p.M())
	mk := float64(p.M()*p.K) / float64(p.C) // node size in cache lines
	missFactor := 1.0
	if mk > 1 {
		// §5.1: log₂(mK/c) + c/(mK) misses per node when a node spans
		// multiple lines.
		missFactor = log2(mk) + 1/mk
	}
	rows := []TimeRow{
		{
			Method:       BinarySearch,
			Branching:    2,
			Levels:       log2(n),
			CmpsInternal: 1,
			CmpsLeaf:     1,
			TotalCmps:    log2(n),
			CacheMisses:  log2(n),
		},
		{
			Method:       TTree,
			Branching:    2,
			Levels:       log2(n/m) - 1,
			CmpsInternal: 1,
			CmpsLeaf:     log2(m),
			TotalCmps:    log2(n),
			CacheMisses:  log2(n / m), // one line per node visit + leaf search ≈ log2 n/m
		},
		{
			Method:       BPlusTree,
			Branching:    m / 2,
			Levels:       logB(m/2, n/m),
			CmpsInternal: log2(m) - 1,
			CmpsLeaf:     log2(m),
			TotalCmps:    log2(n),
			CacheMisses:  logB(m/2, n) * missFactor,
		},
		{
			Method:       FullCSS,
			Branching:    m + 1,
			Levels:       logB(m+1, n/m),
			CmpsInternal: (1 + 2/(m+1)) * log2(m),
			CmpsLeaf:     log2(m),
			TotalCmps:    (1 + 2/(m+1)) * logB(m+1, m) * log2(n),
			CacheMisses:  logB(m+1, n) * missFactor,
		},
		{
			Method:       LevelCSS,
			Branching:    m,
			Levels:       logB(m, n/m),
			CmpsInternal: log2(m),
			CmpsLeaf:     log2(m),
			TotalCmps:    log2(n),
			CacheMisses:  logB(m, n) * missFactor,
		},
	}
	return rows
}

// --- Figure 5: level vs full CSS ratio curves -----------------------------

// LevelFullRatio holds the two curves of Figure 5 at one m.
type LevelFullRatio struct {
	M          int
	Comparison float64 // level/full total comparisons: (m+1)·log_m(m+1)/(m+3)... see below
	CacheAcc   float64 // level/full cache accesses: log_m N / log_{m+1} N
}

// LevelFullRatios evaluates Figure 5 for m in [4, maxM].
// The comparison ratio is the §4.2 closed form
//
//	(m+1)·log_m(m+1) / (m+3)
//
// — always < 1 (level CSS does fewer comparisons) — while the cache-access
// ratio log(m+1)/log(m) is always > 1 (level CSS touches more nodes).
func LevelFullRatios(maxM int) []LevelFullRatio {
	var out []LevelFullRatio
	for m := 4; m <= maxM; m++ {
		fm := float64(m)
		out = append(out, LevelFullRatio{
			M:          m,
			Comparison: (fm + 1) * logB(fm, fm+1) / (fm + 3),
			CacheAcc:   math.Log(fm+1) / math.Log(fm),
		})
	}
	return out
}

// --- Figure 7 / Figure 8: space analysis ----------------------------------

// SpaceIndirect returns the method's space in bytes when the RID list may be
// rearranged (Figure 7, "indirect" column).
func SpaceIndirect(m Method, p Params) float64 {
	n := float64(p.N)
	k := float64(p.K)
	r := float64(p.R)
	pt := float64(p.P)
	sc := float64(p.S * p.C)
	switch m {
	case BinarySearch, InterpolationSearch:
		return 0
	case FullCSS:
		return n * k * k / sc
	case LevelCSS:
		return n * k * k / (sc - k)
	case BPlusTree:
		return n * k * (pt + k) / (sc - pt - k)
	case Hash:
		return (p.H - 1) * n * r
	case TTree:
		return 2 * n * pt * (k + r) / (sc - 2*pt)
	default:
		return math.NaN()
	}
}

// SpaceDirect returns the method's space in bytes when records cannot be
// rearranged, so methods that internalise RIDs pay for them (Figure 7,
// "direct" column).
func SpaceDirect(m Method, p Params) float64 {
	n := float64(p.N)
	r := float64(p.R)
	switch m {
	case Hash:
		return p.H * n * r
	case TTree:
		return SpaceIndirect(TTree, p) + n*r
	default:
		return SpaceIndirect(m, p)
	}
}

// SupportsRIDOrder reports the "RID-Ordered Access" column of Figure 7.
func SupportsRIDOrder(m Method) bool { return m != Hash }

// --- §7: space/time dominance ---------------------------------------------

// Point is one (space, time) measurement of a method configuration.
type Point struct {
	Method Method
	Label  string  // e.g. node size
	Space  float64 // bytes
	Time   float64 // seconds per run
}

// Frontier returns the subset of points forming the §7 stepped line: points
// not dominated in both space and time by any other point, sorted by time.
func Frontier(points []Point) []Point {
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return sorted[i].Space < sorted[j].Space
	})
	var out []Point
	bestSpace := math.Inf(1)
	for _, pt := range sorted {
		if pt.Space < bestSpace {
			out = append(out, pt)
			bestSpace = pt.Space
		}
	}
	return out
}

// Dominates reports whether a is at least as good as b on both axes and
// strictly better on one.
func Dominates(a, b Point) bool {
	return a.Space <= b.Space && a.Time <= b.Time && (a.Space < b.Space || a.Time < b.Time)
}
