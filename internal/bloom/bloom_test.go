package bloom

import "testing"

func TestNoFalseNegatives(t *testing.T) {
	keys := make([]uint32, 0, 5000)
	for i := 0; i < 5000; i++ {
		keys = append(keys, uint32(i*7+3))
	}
	f := Build(keys)
	for _, k := range keys {
		if !f.May(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	keys := make([]uint32, 0, 10000)
	for i := 0; i < 10000; i++ {
		keys = append(keys, uint32(i)*2) // evens
	}
	f := Build(keys)
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.May(uint32(i)*2 + 1) { // odds: all absent
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false-positive rate %.3f, want < 0.05", rate)
	}
}

func TestZeroFilter(t *testing.T) {
	var f Filter[uint32]
	if f.May(7) {
		t.Fatal("zero filter claimed membership")
	}
	if g := Build([]uint32(nil)); g.May(0) {
		t.Fatal("empty build claimed membership")
	}
}
