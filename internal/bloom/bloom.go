// Package bloom is the small membership filter in front of the delta
// layer's sorted runs: before a read binary-searches a run for a key, the
// filter answers "definitely absent" from one or two cache lines, so base
// reads on key ranges a delta batch never touched pay almost nothing for
// the delta's existence.  The filter is sized at build time for the run it
// guards (~10 bits/key, two probes, <2% false positives) and is immutable
// after Build — it lives inside published snapshots, so reads need no
// synchronisation.
package bloom

import "hash/maphash"

// seed is shared by every filter: filters are rebuilt per run and never
// compared across processes, so one process-wide random seed suffices and
// keeps Filter values trivially copyable.
var seed = maphash.MakeSeed()

// Filter is a split-probe bloom filter over comparable keys.  The zero
// value is a filter over nothing: May reports false for every key.
type Filter[K comparable] struct {
	bits []uint64
	mask uint32 // len(bits)*64 - 1; bit count is a power of two
}

// bitsPerKey sizes the filter: 10 bits/key with 2 probes gives a false-
// positive rate under 2%, cheap enough that fence checks rarely matter.
const bitsPerKey = 10

// Build constructs a filter over the keys.
func Build[K comparable](keys []K) Filter[K] {
	if len(keys) == 0 {
		return Filter[K]{}
	}
	nbits := 64
	for nbits < len(keys)*bitsPerKey {
		nbits <<= 1
	}
	f := Filter[K]{bits: make([]uint64, nbits/64), mask: uint32(nbits - 1)}
	for _, k := range keys {
		h1, h2 := f.probes(k)
		f.bits[h1>>6] |= 1 << (h1 & 63)
		f.bits[h2>>6] |= 1 << (h2 & 63)
	}
	return f
}

// probes derives both bit positions from one maphash invocation.
func (f Filter[K]) probes(k K) (uint32, uint32) {
	h := maphash.Comparable(seed, k)
	return uint32(h) & f.mask, uint32(h>>32) & f.mask
}

// May reports whether the key may be in the set (false = definitely not).
func (f Filter[K]) May(k K) bool {
	if f.bits == nil {
		return false
	}
	h1, h2 := f.probes(k)
	return f.bits[h1>>6]&(1<<(h1&63)) != 0 && f.bits[h2>>6]&(1<<(h2&63)) != 0
}

// Bytes returns the filter's memory footprint.
func (f Filter[K]) Bytes() int { return 8 * len(f.bits) }
