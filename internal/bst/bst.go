// Package bst implements the pointer-based binary search tree — the "tree
// binary search" baseline of the paper's Figures 10–11.
//
// One key per node, two child pointers, balanced bulk build from the sorted
// array.  The paper's observation (§3.3, §6.3): a BST performs the same
// log₂ n comparisons as array binary search but adds pointer dereferences,
// and each comparison is a potential cache miss, so on modern machines it is
// sometimes *worse* than binary search on an array — the reverse of the 1986
// ranking.
//
// Nodes live in a flat arena (4-byte links, matching P in Table 1) and are
// allocated in preorder, which mildly favours the upper levels staying in
// cache across repeated lookups, like a real allocator building the tree
// top-down would.
package bst

import (
	"fmt"

	"cssidx/internal/mem"
)

const nilNode = int32(-1)

// Tree is a balanced, search-only binary search tree.  Build with Build.
type Tree struct {
	key   []uint32
	rid   []uint32
	left  []int32
	right []int32
	root  int32
	n     int
}

// Build constructs a balanced BST over the sorted slice keys; RIDs are the
// positions in keys.
func Build(keys []uint32) *Tree {
	n := len(keys)
	t := &Tree{root: nilNode, n: n}
	if n == 0 {
		return t
	}
	t.key = make([]uint32, n)
	t.rid = make([]uint32, n)
	t.left = make([]int32, n)
	t.right = make([]int32, n)
	next := int32(0)
	var build func(lo, hi int) int32
	build = func(lo, hi int) int32 {
		if lo >= hi {
			return nilNode
		}
		mid := int(uint(lo+hi) >> 1)
		id := next
		next++
		t.key[id] = keys[mid]
		t.rid[id] = uint32(mid)
		t.left[id] = build(lo, mid)
		t.right[id] = build(mid+1, hi)
		return id
	}
	t.root = build(0, n)
	return t
}

// Search returns the RID (sorted-array index) of the leftmost occurrence of
// key and true, or 0,false if absent.
func (t *Tree) Search(key uint32) (uint32, bool) {
	i, found, ok := t.lowerBound(key)
	if ok && found == key {
		return uint32(i), true
	}
	return 0, false
}

// LowerBound returns the smallest sorted-array index whose key is ≥ key,
// or n.
func (t *Tree) LowerBound(key uint32) int {
	i, _, _ := t.lowerBound(key)
	return i
}

// lowerBound is the classic BST descent remembering the last node where the
// search went left; it returns the index, that node's key, and whether any
// node qualified.
func (t *Tree) lowerBound(key uint32) (int, uint32, bool) {
	best, bestKey, ok := t.n, uint32(0), false
	cur := t.root
	for cur != nilNode {
		if t.key[cur] >= key {
			best, bestKey, ok = int(t.rid[cur]), t.key[cur], true
			cur = t.left[cur]
		} else {
			cur = t.right[cur]
		}
	}
	return best, bestKey, ok
}

// keyAt returns the key stored for sorted-array index i.  Because the bulk
// build assigns rid=mid over the sorted array, the node holding rid i holds
// the i-th smallest key; a descent finds it.
func (t *Tree) keyAt(i int) (uint32, bool) {
	cur := t.root
	lo, hi := 0, t.n
	for cur != nilNode {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case i == mid:
			return t.key[cur], true
		case i < mid:
			cur, hi = t.left[cur], mid
		default:
			cur, lo = t.right[cur], mid+1
		}
	}
	return 0, false
}

// EqualRange returns [first,last) of sorted-array indexes equal to key.
func (t *Tree) EqualRange(key uint32) (first, last int) {
	first = t.LowerBound(key)
	last = first
	for last < t.n {
		if k, ok := t.keyAt(last); !ok || k != key {
			break
		}
		last++
	}
	return first, last
}

// InOrder appends all keys in sorted order to dst and returns it.
func (t *Tree) InOrder(dst []uint32) []uint32 {
	var walk func(id int32)
	walk = func(id int32) {
		if id == nilNode {
			return
		}
		walk(t.left[id])
		dst = append(dst, t.key[id])
		walk(t.right[id])
	}
	walk(t.root)
	return dst
}

// SpaceBytes returns the arena footprint: key, RID and two links per node
// (16 bytes per key — why Figure 7 shows binary trees far above CSS-trees).
func (t *Tree) SpaceBytes() int {
	return 4 * (len(t.key) + len(t.rid) + len(t.left) + len(t.right))
}

// Levels returns the tree depth in nodes.
func (t *Tree) Levels() int {
	var depth func(id int32) int
	depth = func(id int32) int {
		if id == nilNode {
			return 0
		}
		l, r := depth(t.left[id]), depth(t.right[id])
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return depth(t.root)
}

// Len returns the number of indexed keys.
func (t *Tree) Len() int { return t.n }

// String describes the tree for diagnostics.
func (t *Tree) String() string {
	return fmt.Sprintf("BST{n=%d levels=%d space=%s}", t.n, t.Levels(), mem.Bytes(t.SpaceBytes()))
}
