package bst

import (
	"sort"
	"testing"
	"testing/quick"

	"cssidx/internal/workload"
)

func refLowerBound(a []uint32, key uint32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= key })
}

func TestExhaustiveSmallArrays(t *testing.T) {
	for n := 0; n <= 200; n++ {
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = uint32(3*i + 5)
		}
		tr := Build(keys)
		probes := []uint32{0, ^uint32(0)}
		for _, k := range keys {
			probes = append(probes, k, k-1, k+1)
		}
		for _, p := range probes {
			want := refLowerBound(keys, p)
			if got := tr.LowerBound(p); got != want {
				t.Fatalf("n=%d: LowerBound(%d)=%d, want %d", n, p, got, want)
			}
		}
	}
}

func TestSearchFoundAndMissing(t *testing.T) {
	g := workload.New(60)
	keys := g.SortedDistinct(20000)
	tr := Build(keys)
	for _, k := range g.Lookups(keys, 3000) {
		rid, ok := tr.Search(k)
		if !ok || keys[rid] != k {
			t.Fatalf("Search(%d)=(%d,%v)", k, rid, ok)
		}
	}
	for _, k := range g.Misses(keys, 3000) {
		if _, ok := tr.Search(k); ok {
			t.Fatalf("found absent key %d", k)
		}
	}
}

func TestLeftmostDuplicate(t *testing.T) {
	g := workload.New(61)
	keys := g.SortedWithDuplicates(20000, 6)
	tr := Build(keys)
	for _, k := range g.Lookups(keys, 2000) {
		rid, ok := tr.Search(k)
		want := refLowerBound(keys, k)
		if !ok || int(rid) != want {
			t.Fatalf("Search(%d)=(%d,%v), want leftmost %d", k, rid, ok, want)
		}
	}
}

func TestEqualRange(t *testing.T) {
	keys := []uint32{1, 3, 3, 3, 5, 5, 8}
	tr := Build(keys)
	cases := []struct {
		key         uint32
		first, last int
	}{
		{1, 0, 1}, {3, 1, 4}, {5, 4, 6}, {8, 6, 7}, {2, 1, 1}, {9, 7, 7},
	}
	for _, c := range cases {
		f, l := tr.EqualRange(c.key)
		if f != c.first || l != c.last {
			t.Errorf("EqualRange(%d)=[%d,%d), want [%d,%d)", c.key, f, l, c.first, c.last)
		}
	}
}

func TestInOrderIsSorted(t *testing.T) {
	g := workload.New(62)
	keys := g.SortedWithDuplicates(5000, 3)
	got := Build(keys).InOrder(nil)
	if len(got) != len(keys) {
		t.Fatalf("InOrder returned %d keys", len(got))
	}
	for i := range got {
		if got[i] != keys[i] {
			t.Fatalf("InOrder[%d]=%d, want %d", i, got[i], keys[i])
		}
	}
}

func TestBalancedDepth(t *testing.T) {
	g := workload.New(63)
	keys := g.SortedDistinct(1 << 16)
	tr := Build(keys)
	// Perfectly balanced over 2^16 keys: depth 17 max.
	if d := tr.Levels(); d > 17 {
		t.Errorf("depth %d, want ≤ 17", d)
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		keys := make([]uint32, len(raw))
		for i, v := range raw {
			keys[i] = uint32(v)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		return Build(keys).LowerBound(uint32(probe)) == refLowerBound(keys, uint32(probe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	tr := Build(nil)
	if _, ok := tr.Search(1); ok {
		t.Error("found key in empty tree")
	}
	if got := tr.LowerBound(1); got != 0 {
		t.Errorf("empty LowerBound=%d", got)
	}
	tr = Build([]uint32{9})
	if rid, ok := tr.Search(9); !ok || rid != 0 {
		t.Errorf("single: (%d,%v)", rid, ok)
	}
}

func TestSpaceIs16BytesPerKey(t *testing.T) {
	tr := Build(make([]uint32, 1000))
	if got := tr.SpaceBytes(); got != 16000 {
		t.Errorf("space=%d, want 16000", got)
	}
}

func TestBoundaryKeys(t *testing.T) {
	keys := []uint32{0, 0, 1, ^uint32(0) - 1, ^uint32(0), ^uint32(0)}
	tr := Build(keys)
	if rid, ok := tr.Search(0); !ok || rid != 0 {
		t.Errorf("Search(0)=(%d,%v)", rid, ok)
	}
	if rid, ok := tr.Search(^uint32(0)); !ok || rid != 4 {
		t.Errorf("Search(max)=(%d,%v)", rid, ok)
	}
}
