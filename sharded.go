// Sharded concurrent serving: the §2.3 rebuild cycle made concurrent.  The
// paper's position is that OLAP indexes are read-mostly and absorb batch
// updates by rebuilding rather than by incremental maintenance;
// ShardedIndex turns that into a serving layer.  The key space is
// range-partitioned across N shards (equal-count by default, or skew-aware
// from a probe sample), each shard's CSS-tree sits behind an atomic
// pointer, and reads are lock-free while a background goroutine absorbs
// batched inserts/deletes per shard and publishes freshly rebuilt trees
// with epoch-swaps.  See internal/shard for the machinery.
package cssidx

import (
	"cmp"
	"runtime"

	"cssidx/internal/csstree"
	"cssidx/internal/shard"
)

// BatchSchedule selects how ShardedIndex orders a probe batch before the
// lockstep descent.  Results are identical under every schedule; only the
// memory-access order changes.
type BatchSchedule int

const (
	// ScheduleAuto (the default) estimates each batch's duplicate density
	// from a small strided sample and picks input-order or sorted per
	// batch: uniform streams skip the sort, skewed streams get the dedup.
	ScheduleAuto BatchSchedule = iota
	// ScheduleInputOrder always descends probes in input order.
	ScheduleInputOrder
	// ScheduleSorted always radix-sorts and deduplicates the batch first:
	// key-ordered probes walk neighbouring root-to-leaf paths, so a skewed
	// batch touches each directory node once, and repeated probes descend
	// once.
	ScheduleSorted
)

// String names the schedule for diagnostics and bench output.
func (s BatchSchedule) String() string {
	switch s {
	case ScheduleAuto:
		return "auto"
	case ScheduleInputOrder:
		return "input-order"
	case ScheduleSorted:
		return "sorted"
	default:
		return "BatchSchedule(?)"
	}
}

// toShard maps the public schedule to the internal engine's — the single
// conversion site (ShardedOptions.schedule and both Resolve surfaces route
// through it, so the mapping cannot drift).
func (s BatchSchedule) toShard() shard.Schedule {
	switch s {
	case ScheduleInputOrder:
		return shard.ScheduleInput
	case ScheduleSorted:
		return shard.ScheduleKeyOrdered
	default:
		return shard.ScheduleAuto
	}
}

// fromShardResolved maps a RESOLVED internal schedule back (resolution
// never returns auto).
func fromShardResolved(s shard.Schedule) BatchSchedule {
	if s == shard.ScheduleKeyOrdered {
		return ScheduleSorted
	}
	return ScheduleInputOrder
}

// Resolve reports the concrete schedule this setting runs a batch of these
// probes under: ScheduleAuto resolves per batch (the sampled
// duplicate-density estimate the batch methods use), the manual settings
// resolve to themselves.  Surface THIS, not the requested setting, when
// tagging timings — auto legitimately flips between batches.
func (s BatchSchedule) Resolve(probes []Key) BatchSchedule {
	return fromShardResolved(shard.ResolveSchedule(s.toShard(), probes))
}

// ShardedOptions configures NewSharded.
type ShardedOptions[K cmp.Ordered] struct {
	// Shards is the number of range shards; 0 picks GOMAXPROCS (capped at 16).
	Shards int
	// NodeSlots is the CSS-tree node size in key slots (a power of two ≥ 2);
	// 0 means 16, one 64-byte cache line of 4-byte keys.
	NodeSlots int
	// SkewSample, when non-empty, is a sample of the expected lookup
	// distribution (e.g. workload.Gen.ZipfLookups); shard boundaries are
	// then placed at its quantiles so each shard receives roughly equal
	// traffic instead of roughly equal keys.
	SkewSample []K
	// Schedule picks the batch probe schedule (default ScheduleAuto).
	Schedule BatchSchedule
	// SortBatches is the boolean forerunner of Schedule, kept as a manual
	// override: true forces ScheduleSorted.
	SortBatches bool
	// Parallel tunes the batch worker pool.  The zero value is the
	// default engine — GOMAXPROCS workers, sequential below ~4k probes;
	// set Workers to 1 to keep batches on the calling goroutine.
	Parallel ParallelOptions
	// Delta tunes the mutable delta layer that absorbs small insert
	// batches as sorted runs instead of folding them into a full shard
	// rebuild.  The zero value enables it with the default tiering
	// (4 runs, fold at 1/8 of the base); Delta.Disabled restores the pure
	// rebuild-per-batch cycle.
	Delta DeltaPolicy
}

// DeltaPolicy tunes the delta layer's tiering; see the field docs on the
// internal policy (internal/shard.DeltaPolicy) for the exact thresholds.
type DeltaPolicy = shard.DeltaPolicy

// DeltaStats snapshots the delta layer across shards: base vs delta key
// counts, outstanding runs, and lifetime absorb/merge/fold counters.
type DeltaStats = shard.DeltaStats

// ShardedIndex is a concurrently servable index over a multiset of keys of
// any ordered type: lock-free Search/LowerBound/EqualRange/range scans,
// batched Insert/Delete absorbed by background epoch-swap rebuilds.
//
// Positions follow the same convention as every other index in this
// package — offsets into the (conceptual) sorted key array, here the
// concatenation of the shard arrays in key order.  While rebuilds of other
// shards are in flight, a global position reflects each shard's own latest
// epoch; use Snapshot for a frozen cross-shard view with stable positions.
//
// Close releases the background rebuilder when the index is done serving.
type ShardedIndex[K cmp.Ordered] struct {
	ix *shard.Index[K]
}

// NewSharded builds a sharded index over the sorted keys (duplicates
// allowed).  keys is not copied at build; shards own fresh arrays from
// their first epoch-swap on.  For K = uint32 each shard uses the tuned
// level CSS-tree; other key types use the generic CSS-tree (generic.go).
func NewSharded[K cmp.Ordered](keys []K, opts ShardedOptions[K]) *ShardedIndex[K] {
	ns := opts.Shards
	if ns <= 0 {
		ns = runtime.GOMAXPROCS(0)
		if ns > 16 {
			ns = 16
		}
	}
	bounds := shard.WeightedBoundaries(keys, opts.SkewSample, ns)
	return newShardedFrom(keys, bounds, opts)
}

// newShardedFrom wires a sharded index over an explicit partition with the
// serving options — the shared construction tail of NewSharded and
// LoadSharded, so a restored index can never diverge from a fresh build.
func newShardedFrom[K cmp.Ordered](keys []K, bounds []K, opts ShardedOptions[K]) *ShardedIndex[K] {
	m := opts.NodeSlots
	if m == 0 {
		m = 16
	}
	ix := shard.New(keys, bounds, shardedBuilder[K](m))
	ix.SetBatchSchedule(opts.schedule())
	ix.SetParallel(opts.Parallel.engine())
	ix.SetDeltaPolicy(opts.Delta)
	return &ShardedIndex[K]{ix: ix}
}

// schedule resolves the two schedule knobs: SortBatches is the manual
// override, otherwise Schedule applies (default ScheduleAuto).
func (o ShardedOptions[K]) schedule() shard.Schedule {
	if o.SortBatches {
		return shard.ScheduleKeyOrdered
	}
	return o.Schedule.toShard()
}

// shardedBuilder picks the tuned uint32 level CSS-tree when K is uint32 and
// the generic CSS-tree otherwise.  The any-round-trip succeeds exactly when
// the instantiated K is uint32, so the fast path costs one type assertion
// per shard rebuild.
func shardedBuilder[K cmp.Ordered](m int) shard.Builder[K] {
	return func(sorted []K) shard.Tree[K] {
		if u, ok := any(sorted).([]uint32); ok {
			if t, ok := any(shard.Tree[uint32](csstree.BuildLevel(u, m))).(shard.Tree[K]); ok {
				return t
			}
		}
		return NewGenericLevel(sorted, m)
	}
}

// Search returns the global position of the leftmost occurrence of key, or -1.
func (x *ShardedIndex[K]) Search(key K) int { return x.ix.Search(key) }

// LowerBound returns the smallest global position whose key is ≥ key, or Len().
func (x *ShardedIndex[K]) LowerBound(key K) int { return x.ix.LowerBound(key) }

// EqualRange returns the half-open global position range of occurrences of
// key; duplicates of a key always live in one shard, so the range is exact.
func (x *ShardedIndex[K]) EqualRange(key K) (first, last int) { return x.ix.EqualRange(key) }

// SearchBatch stores Search(probes[i]) into out[i] for every probe
// (len(out) must equal len(probes)).  The probes are partitioned by shard
// boundaries, each shard's group descends its tree in lockstep, and large
// batches fan the per-shard runs across the worker pool
// (ShardedOptions.Parallel) — all against one frozen snapshot, so a batch
// never mixes epochs even while rebuilds publish concurrently.  Results are
// bit-identical to the scalar calls against that snapshot, under every
// schedule and worker count.
func (x *ShardedIndex[K]) SearchBatch(probes []K, out []int32) { x.ix.SearchBatch(probes, out) }

// LowerBoundBatch stores LowerBound(probes[i]) into out[i] for every probe;
// see SearchBatch for the batch execution model.
func (x *ShardedIndex[K]) LowerBoundBatch(probes []K, out []int32) { x.ix.LowerBoundBatch(probes, out) }

// EqualRangeBatch stores EqualRange(probes[i]) into (first[i], last[i]); all
// three slices must have equal length.
func (x *ShardedIndex[K]) EqualRangeBatch(probes []K, first, last []int32) {
	x.ix.EqualRangeBatch(probes, first, last)
}

// Len returns the total number of keys.
func (x *ShardedIndex[K]) Len() int { return x.ix.Len() }

// ShardCount returns the number of range shards.
func (x *ShardedIndex[K]) ShardCount() int { return x.ix.ShardCount() }

// Bounds returns the shard split boundaries (len = ShardCount()-1,
// strictly ascending): shard i serves keys < Bounds()[i], the last shard
// the rest.  Observability surfaces use it to report which shards a range
// touches.
func (x *ShardedIndex[K]) Bounds() []K { return x.ix.Bounds() }

// Epochs returns each shard's current epoch (1 = initial build; +1 per
// published rebuild).
func (x *ShardedIndex[K]) Epochs() []uint64 { return x.ix.Epochs() }

// BatchCalibration reports the adaptive worker-span calibration (see
// BatchTuning): the derived MinBatchPerWorker and measured per-probe cost;
// ok is false before any batch was large enough to calibrate.
func (x *ShardedIndex[K]) BatchCalibration() (minPerWorker int, perProbeNs float64, ok bool) {
	return x.ix.BatchCalibration()
}

// ResolveSchedule reports the concrete schedule the index would descend
// this batch under, resolving a configured ScheduleAuto through the same
// per-batch estimate the batch methods use.
func (x *ShardedIndex[K]) ResolveSchedule(probes []K) BatchSchedule {
	return fromShardResolved(shard.ResolveSchedule(x.ix.Schedule(), probes))
}

// Insert enqueues keys for insertion; they become visible at the affected
// shards' next epoch-swaps (Sync waits for that).
func (x *ShardedIndex[K]) Insert(keys ...K) { x.ix.Insert(keys...) }

// Delete enqueues keys for deletion (multiset semantics: one occurrence per
// requested key; absent keys are ignored).
func (x *ShardedIndex[K]) Delete(keys ...K) { x.ix.Delete(keys...) }

// Sync blocks until every update enqueued before the call is visible.
func (x *ShardedIndex[K]) Sync() { x.ix.Sync() }

// DeltaStats snapshots the delta layer: how many keys sit in immutable
// base arrays vs outstanding delta runs, and the lifetime tiering counters.
func (x *ShardedIndex[K]) DeltaStats() DeltaStats { return x.ix.DeltaStats() }

// Compact absorbs any pending updates, folds every shard's outstanding
// delta runs into fresh base arrays and trees, and blocks until the folds
// are published — the manual counterpart of the size-tiered fold.
func (x *ShardedIndex[K]) Compact() { x.ix.Compact() }

// Close flushes pending updates and stops the background rebuilder.
// The index remains readable; Close is idempotent.
func (x *ShardedIndex[K]) Close() { x.ix.Close() }

// Ascend calls fn for every key in the half-open value range [lo, hi) in
// ascending order over a frozen snapshot, with the key's global position;
// fn returning false stops the scan.
func (x *ShardedIndex[K]) Ascend(lo, hi K, fn func(pos int, key K) bool) {
	x.Snapshot().Ascend(lo, hi, fn)
}

// Snapshot captures a frozen cross-shard view: repeatable reads with stable
// global positions, unaffected by concurrent epoch-swaps.  Snapshots are
// cheap (one atomic load per shard, no copying).
func (x *ShardedIndex[K]) Snapshot() *ShardedView[K] {
	return &ShardedView[K]{v: x.ix.View()}
}

// ShardedView is a frozen capture of every shard at one point; see
// ShardedIndex.Snapshot.  The view inherits the index's batch schedule and
// worker-pool options.
type ShardedView[K cmp.Ordered] struct {
	v *shard.View[K]
}

// Len returns the number of keys in the view.
func (s *ShardedView[K]) Len() int { return s.v.Len() }

// Epochs returns the epoch of each captured shard snapshot — the
// invalidation token consumers (result caches, snapshot save/restore)
// identify this frozen state by.
func (s *ShardedView[K]) Epochs() []uint64 { return s.v.Epochs() }

// Key returns the key at a global position in the view.
func (s *ShardedView[K]) Key(pos int) K { return s.v.Key(pos) }

// Search returns the position of the leftmost occurrence of key, or -1.
func (s *ShardedView[K]) Search(key K) int { return s.v.Search(key) }

// LowerBound returns the smallest position whose key is ≥ key, or Len().
func (s *ShardedView[K]) LowerBound(key K) int { return s.v.LowerBound(key) }

// EqualRange returns the half-open position range of occurrences of key.
func (s *ShardedView[K]) EqualRange(key K) (first, last int) { return s.v.EqualRange(key) }

// SearchBatch answers a whole probe batch against the frozen view; results
// are bit-identical to the scalar calls (see ShardedIndex.SearchBatch).
func (s *ShardedView[K]) SearchBatch(probes []K, out []int32) {
	s.v.SearchBatch(probes, out)
}

// LowerBoundBatch answers a whole probe batch against the frozen view.
func (s *ShardedView[K]) LowerBoundBatch(probes []K, out []int32) {
	s.v.LowerBoundBatch(probes, out)
}

// EqualRangeBatch answers a whole probe batch against the frozen view.
func (s *ShardedView[K]) EqualRangeBatch(probes []K, first, last []int32) {
	s.v.EqualRangeBatch(probes, first, last)
}

// Ascend calls fn for every key in [lo, hi) ascending, with its position;
// fn returning false stops the scan.  The scan is the merging cross-shard
// range iterator of internal/shard.
func (s *ShardedView[K]) Ascend(lo, hi K, fn func(pos int, key K) bool) {
	for it := s.v.Range(lo, hi); ; {
		k, pos, ok := it.Next()
		if !ok || !fn(pos, k) {
			return
		}
	}
}
