// Package cssidx is a main-memory indexing library for decision-support
// (OLAP) workloads, reproducing "Cache Conscious Indexing for Decision-
// Support in Main Memory" (Rao & Ross, Columbia CUCS-019-98 / VLDB'99).
//
// The centrepiece is the Cache-Sensitive Search Tree (CSS-tree): a
// pointer-free search directory laid over a sorted array whose node size
// matches the CPU cache line, giving close to the minimum possible cache
// misses per lookup while adding only a few percent of space.  The package
// also provides every structure the paper evaluates against — array binary
// search, interpolation search, binary search trees, T-trees, B+-trees and
// chained bucket hashing — behind one interface, so the paper's space/time
// trade-off (Figure 2/14) can be explored directly on your data.
//
// All indexes are built in one shot from a sorted key array and are
// read-only afterwards: in an OLAP setting batch updates are absorbed by
// rebuilding (§2.3, §4.1.1 — rebuilding 25M keys takes well under a second;
// see BenchmarkFig9Build).
//
// # Quick start
//
//	keys := []cssidx.Key{2, 3, 5, 8, 13, 21, 34}   // sorted
//	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
//	i := idx.Search(13)                             // 4
//	lo := idx.LowerBound(9)                         // 4 (first key ≥ 9)
//
// The sorted array itself is the leaf level: Search and LowerBound return
// positions in it, which double as RIDs for a record-identifier list sorted
// by the indexed attribute (§2.2).
//
// # Batched probing: the execution model
//
// Decision-support operations probe in bulk — a join once per outer row, an
// IN-list once per element — so the batch, not the single lookup, is the
// unit of execution.  BatchIndex/BatchOrderedIndex answer whole probe
// batches: the CSS-trees descend a batch in lockstep (independent cache
// misses overlap; upper directory levels stay cache-resident across the
// group), AsBatch/AsBatchOrdered adapt every other method, and SortedBatch
// adds the sort-probes-first schedule for skewed streams (radix-sort the
// batch, descend each distinct key once, scatter results back).  Batched
// results are bit-identical to the scalar methods; only the memory-access
// schedule changes.  ShardedIndex batches partition by shard boundary and
// run against one frozen snapshot epoch, and the mmdb joins, IN-lists and
// access-path selection are built on this surface.
//
// # Concurrent serving: ShardedIndex
//
// ShardedIndex turns the §2.3 rebuild cycle into a concurrent serving
// layer: the key space is range-partitioned across N shards (equal-count,
// or skew-aware from a probe sample), each shard's CSS-tree sits behind an
// atomic pointer, and Search/LowerBound/EqualRange/range scans are
// lock-free while a background goroutine absorbs batched Insert/Delete
// traffic per shard and publishes freshly rebuilt trees with epoch-swaps.
//
//	idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[cssidx.Key]{Shards: 8})
//	defer idx.Close()
//	go func() { idx.Insert(batch...); idx.Sync() }()   // writers
//	pos := idx.Search(13)                              // readers, lock-free
//
// Use Snapshot for repeatable reads with stable positions across shards,
// and Ascend for merged cross-shard range scans.
package cssidx

import (
	"fmt"

	"cssidx/internal/binsearch"
	"cssidx/internal/bptree"
	"cssidx/internal/bst"
	"cssidx/internal/csstree"
	"cssidx/internal/hashidx"
	"cssidx/internal/interp"
	"cssidx/internal/mem"
	"cssidx/internal/ttree"
)

// Key is a 4-byte index key (K = 4 bytes in the paper's Table 1).
type Key = uint32

// RID is a 4-byte record identifier (R = 4 bytes in Table 1).  In this
// library RIDs are positions in the sorted key array.
type RID = uint32

// DefaultNodeBytes is the default tree node size: one cache line.
const DefaultNodeBytes = mem.CacheLine

// Index is a read-only search index over a sorted array of keys.
type Index interface {
	// Name identifies the method, matching the paper's figure legends.
	Name() string
	// Search returns the position in the indexed sorted array of the
	// leftmost occurrence of key, or -1 if absent.
	Search(key Key) int
	// SpaceBytes is the memory the structure occupies beyond the sorted
	// array it indexes (0 for binary and interpolation search).
	SpaceBytes() int
}

// OrderedIndex additionally supports order-based access: range queries and
// duplicate enumeration.  Every method except hashing provides it
// (Figure 7's "RID-Ordered Access" column).
type OrderedIndex interface {
	Index
	// LowerBound returns the smallest position whose key is ≥ key, or the
	// number of keys if none is.
	LowerBound(key Key) int
	// EqualRange returns the half-open position range [first,last) of
	// occurrences of key; first==last means absent.
	EqualRange(key Key) (first, last int)
}

// --- CSS-trees -------------------------------------------------------------

type fullCSS struct{ t *csstree.Full }

// NewFullCSS builds a full CSS-tree (§4.1) over the sorted keys with the
// given node size in bytes (use DefaultNodeBytes to match the cache line).
// keys is retained, not copied.
func NewFullCSS(keys []Key, nodeBytes int) OrderedIndex {
	return fullCSS{csstree.BuildFull(keys, slotsFor(nodeBytes))}
}

func (x fullCSS) Name() string                  { return "full CSS-tree" }
func (x fullCSS) Search(key Key) int            { return x.t.Search(key) }
func (x fullCSS) LowerBound(key Key) int        { return x.t.LowerBound(key) }
func (x fullCSS) EqualRange(key Key) (int, int) { return x.t.EqualRange(key) }
func (x fullCSS) SpaceBytes() int               { return x.t.SpaceBytes() }

type levelCSS struct{ t *csstree.Level }

// NewLevelCSS builds a level CSS-tree (§4.2) over the sorted keys with the
// given node size in bytes; the node size must be a power of two ≥ 8.
// Level CSS-trees trade a slightly larger directory for fewer comparisons —
// across the paper's tests they were up to 8% faster than full CSS-trees.
func NewLevelCSS(keys []Key, nodeBytes int) OrderedIndex {
	return levelCSS{csstree.BuildLevel(keys, slotsFor(nodeBytes))}
}

func (x levelCSS) Name() string                  { return "level CSS-tree" }
func (x levelCSS) Search(key Key) int            { return x.t.Search(key) }
func (x levelCSS) LowerBound(key Key) int        { return x.t.LowerBound(key) }
func (x levelCSS) EqualRange(key Key) (int, int) { return x.t.EqualRange(key) }
func (x levelCSS) SpaceBytes() int               { return x.t.SpaceBytes() }

// --- B+-tree ----------------------------------------------------------------

type bplus struct{ t *bptree.Tree }

// NewBPlusTree builds a bulk-loaded, 100%-full B+-tree (§3.4) with the given
// node size in bytes.
func NewBPlusTree(keys []Key, nodeBytes int) OrderedIndex {
	return bplus{bptree.Build(keys, slotsFor(nodeBytes))}
}

func (x bplus) Name() string { return "B+-tree" }
func (x bplus) Search(key Key) int {
	rid, ok := x.t.Search(key)
	if !ok {
		return -1
	}
	return int(rid)
}
func (x bplus) LowerBound(key Key) int        { return x.t.LowerBound(key) }
func (x bplus) EqualRange(key Key) (int, int) { return x.t.EqualRange(key) }
func (x bplus) SpaceBytes() int               { return x.t.SpaceBytes() }

// --- T-tree -----------------------------------------------------------------

type tTree struct{ t *ttree.Tree }

// NewTTree builds the improved T-tree of [LC86b] (§3.3).  nodeBytes sizes
// the node block: capacity = (nodeBytes − 2·4)/(4+4) ⟨key,RID⟩ pairs.
func NewTTree(keys []Key, nodeBytes int) OrderedIndex {
	return tTree{ttree.Build(keys, ttreeCapacityFor(nodeBytes))}
}

func (x tTree) Name() string { return "T-tree" }
func (x tTree) Search(key Key) int {
	rid, ok := x.t.Search(key)
	if !ok {
		return -1
	}
	return int(rid)
}
func (x tTree) LowerBound(key Key) int        { return x.t.LowerBound(key) }
func (x tTree) EqualRange(key Key) (int, int) { return x.t.EqualRange(key) }
func (x tTree) SpaceBytes() int               { return x.t.SpaceBytes() }

// --- binary search tree ------------------------------------------------------

type bstIdx struct{ t *bst.Tree }

// NewBST builds a balanced pointer-based binary search tree ("tree binary
// search" in Figures 10–11).
func NewBST(keys []Key) OrderedIndex {
	return bstIdx{bst.Build(keys)}
}

func (x bstIdx) Name() string { return "tree binary search" }
func (x bstIdx) Search(key Key) int {
	rid, ok := x.t.Search(key)
	if !ok {
		return -1
	}
	return int(rid)
}
func (x bstIdx) LowerBound(key Key) int        { return x.t.LowerBound(key) }
func (x bstIdx) EqualRange(key Key) (int, int) { return x.t.EqualRange(key) }
func (x bstIdx) SpaceBytes() int               { return x.t.SpaceBytes() }

// --- array searches ----------------------------------------------------------

type binIdx struct{ keys []Key }

// NewBinarySearch wraps plain array binary search (§3.2): zero extra space,
// log₂ n cache misses.
func NewBinarySearch(keys []Key) OrderedIndex { return binIdx{keys} }

func (x binIdx) Name() string           { return "array binary search" }
func (x binIdx) Search(key Key) int     { return binsearch.Search(x.keys, key) }
func (x binIdx) LowerBound(key Key) int { return binsearch.LowerBound(x.keys, key) }
func (x binIdx) EqualRange(key Key) (int, int) {
	return binsearch.EqualRange(x.keys, key)
}
func (x binIdx) SpaceBytes() int { return 0 }

type interpIdx struct{ keys []Key }

// NewInterpolation wraps interpolation search: zero extra space, fast only
// on linearly distributed keys (§6.3).
func NewInterpolation(keys []Key) OrderedIndex { return interpIdx{keys} }

func (x interpIdx) Name() string           { return "interpolation search" }
func (x interpIdx) Search(key Key) int     { return interp.Search(x.keys, key) }
func (x interpIdx) LowerBound(key Key) int { return interp.LowerBound(x.keys, key) }
func (x interpIdx) EqualRange(key Key) (int, int) {
	return interp.EqualRange(x.keys, key)
}
func (x interpIdx) SpaceBytes() int { return 0 }

// --- hashing ------------------------------------------------------------------

type hashIdx struct{ t *hashidx.Table }

// NewHash builds a chained-bucket hash index (§3.5) with cache-line-sized
// buckets.  dirSize (power of two) controls the space/time trade: the paper
// uses 2²² buckets for 10M keys.  Hashing returns an Index, not an
// OrderedIndex — it cannot answer range queries.
func NewHash(keys []Key, dirSize int) Index {
	return hashIdx{hashidx.Build(keys, dirSize, mem.CacheLine)}
}

// DefaultHashDirSize returns a directory sizing that keeps chains near one
// bucket for n keys: the next power of two ≥ n/4 (≈4 pairs per 7-pair
// bucket).
func DefaultHashDirSize(n int) int {
	if n < 16 {
		return 4
	}
	return mem.NextPow2(n / 4)
}

func (x hashIdx) Name() string { return "hash" }
func (x hashIdx) Search(key Key) int {
	rid, ok := x.t.Search(key)
	if !ok {
		return -1
	}
	return int(rid)
}
func (x hashIdx) SpaceBytes() int { return x.t.SpaceBytes() }

// --- kinds ---------------------------------------------------------------------

// Kind names an index method for table-driven construction.
type Kind int

// The methods of the paper's evaluation.
const (
	KindBinarySearch Kind = iota
	KindInterpolation
	KindBST
	KindTTree
	KindBPlusTree
	KindFullCSS
	KindLevelCSS
	KindHash
)

// Kinds returns all methods in the paper's figure order.
func Kinds() []Kind {
	return []Kind{
		KindBinarySearch, KindBST, KindInterpolation, KindTTree,
		KindBPlusTree, KindFullCSS, KindLevelCSS, KindHash,
	}
}

// String returns the method name used in the paper's figures.
func (k Kind) String() string {
	switch k {
	case KindBinarySearch:
		return "array binary search"
	case KindInterpolation:
		return "interpolation search"
	case KindBST:
		return "tree binary search"
	case KindTTree:
		return "T-tree"
	case KindBPlusTree:
		return "B+-tree"
	case KindFullCSS:
		return "full CSS-tree"
	case KindLevelCSS:
		return "level CSS-tree"
	case KindHash:
		return "hash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options configures New.
type Options struct {
	// NodeBytes is the node size for tree methods; 0 means DefaultNodeBytes.
	NodeBytes int
	// HashDirSize is the hash directory size; 0 means DefaultHashDirSize(n).
	HashDirSize int
}

// New builds an index of the given kind over the sorted keys.  Methods with
// order support satisfy OrderedIndex (assert to use range queries).
func New(kind Kind, keys []Key, opts Options) Index {
	nb := opts.NodeBytes
	if nb == 0 {
		nb = DefaultNodeBytes
	}
	switch kind {
	case KindBinarySearch:
		return NewBinarySearch(keys)
	case KindInterpolation:
		return NewInterpolation(keys)
	case KindBST:
		return NewBST(keys)
	case KindTTree:
		return NewTTree(keys, nb)
	case KindBPlusTree:
		return NewBPlusTree(keys, nb)
	case KindFullCSS:
		return NewFullCSS(keys, nb)
	case KindLevelCSS:
		return NewLevelCSS(keys, nb)
	case KindHash:
		ds := opts.HashDirSize
		if ds == 0 {
			ds = DefaultHashDirSize(len(keys))
		}
		return NewHash(keys, ds)
	default:
		panic(fmt.Sprintf("cssidx: unknown kind %d", int(kind)))
	}
}

// slotsFor converts a node size in bytes to 4-byte slots, validating it.
func slotsFor(nodeBytes int) int {
	if nodeBytes < 8 || nodeBytes%4 != 0 {
		panic(fmt.Sprintf("cssidx: node size %d bytes must be a multiple of 4 and ≥ 8", nodeBytes))
	}
	return nodeBytes / 4
}

// ttreeCapacityFor converts a node size in bytes to ⟨key,RID⟩ pairs after
// the two child links.
func ttreeCapacityFor(nodeBytes int) int {
	c := (nodeBytes - 2*mem.PtrBytes) / (mem.KeyBytes + mem.RIDBytes)
	if c < 2 {
		panic(fmt.Sprintf("cssidx: node size %d bytes too small for a T-tree node", nodeBytes))
	}
	return c
}
