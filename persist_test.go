package cssidx_test

import (
	"bytes"
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := workload.New(150)
	keys := g.SortedDistinct(30000)
	for _, kind := range []cssidx.Kind{cssidx.KindFullCSS, cssidx.KindLevelCSS} {
		idx := cssidx.New(kind, keys, cssidx.Options{})
		var buf bytes.Buffer
		if err := cssidx.SaveIndex(&buf, idx); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		loaded, err := cssidx.LoadIndex(&buf, keys)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if loaded.Name() != idx.Name() {
			t.Errorf("%v: restored as %q", kind, loaded.Name())
		}
		probes := append(g.Lookups(keys, 2000), g.Misses(keys, 2000)...)
		for _, k := range probes {
			if a, b := idx.Search(k), loaded.Search(k); a != b {
				t.Fatalf("%v: snapshot diverges at key %d: %d vs %d", kind, k, a, b)
			}
		}
		if loaded.SpaceBytes() != idx.SpaceBytes() {
			t.Errorf("%v: space changed: %d vs %d", kind, loaded.SpaceBytes(), idx.SpaceBytes())
		}
	}
}

func TestSaveUnsupportedKinds(t *testing.T) {
	g := workload.New(151)
	keys := g.SortedDistinct(100)
	for _, kind := range []cssidx.Kind{
		cssidx.KindBinarySearch, cssidx.KindBST, cssidx.KindTTree,
		cssidx.KindBPlusTree, cssidx.KindHash,
	} {
		idx := cssidx.New(kind, keys, cssidx.Options{})
		if err := cssidx.SaveIndex(&bytes.Buffer{}, idx); err == nil {
			t.Errorf("%v: expected unsupported error", kind)
		}
	}
}

func TestLoadRejectsChangedKeys(t *testing.T) {
	g := workload.New(152)
	keys := g.SortedDistinct(5000)
	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	var buf bytes.Buffer
	if err := cssidx.SaveIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	// OLAP batch arrived: the array changed; the snapshot must be refused.
	changed := append([]uint32(nil), keys...)
	changed[0] = changed[0] + 1
	if _, err := cssidx.LoadIndex(&buf, changed); err == nil {
		t.Error("stale snapshot attached to updated array")
	}
}
