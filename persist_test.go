package cssidx_test

import (
	"bytes"
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := workload.New(150)
	keys := g.SortedDistinct(30000)
	for _, kind := range []cssidx.Kind{cssidx.KindFullCSS, cssidx.KindLevelCSS} {
		idx := cssidx.New(kind, keys, cssidx.Options{})
		var buf bytes.Buffer
		if err := cssidx.SaveIndex(&buf, idx); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		loaded, err := cssidx.LoadIndex(&buf, keys)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if loaded.Name() != idx.Name() {
			t.Errorf("%v: restored as %q", kind, loaded.Name())
		}
		probes := append(g.Lookups(keys, 2000), g.Misses(keys, 2000)...)
		for _, k := range probes {
			if a, b := idx.Search(k), loaded.Search(k); a != b {
				t.Fatalf("%v: snapshot diverges at key %d: %d vs %d", kind, k, a, b)
			}
		}
		if loaded.SpaceBytes() != idx.SpaceBytes() {
			t.Errorf("%v: space changed: %d vs %d", kind, loaded.SpaceBytes(), idx.SpaceBytes())
		}
	}
}

func TestSaveUnsupportedKinds(t *testing.T) {
	g := workload.New(151)
	keys := g.SortedDistinct(100)
	for _, kind := range []cssidx.Kind{
		cssidx.KindBinarySearch, cssidx.KindBST, cssidx.KindTTree,
		cssidx.KindBPlusTree, cssidx.KindHash,
	} {
		idx := cssidx.New(kind, keys, cssidx.Options{})
		if err := cssidx.SaveIndex(&bytes.Buffer{}, idx); err == nil {
			t.Errorf("%v: expected unsupported error", kind)
		}
	}
}

func TestLoadRejectsChangedKeys(t *testing.T) {
	g := workload.New(152)
	keys := g.SortedDistinct(5000)
	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	var buf bytes.Buffer
	if err := cssidx.SaveIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	// OLAP batch arrived: the array changed; the snapshot must be refused.
	changed := append([]uint32(nil), keys...)
	changed[0] = changed[0] + 1
	if _, err := cssidx.LoadIndex(&buf, changed); err == nil {
		t.Error("stale snapshot attached to updated array")
	}
}

func TestSaveLoadShardedRoundTrip(t *testing.T) {
	g := workload.New(153)
	keys := g.SortedWithDuplicates(40000, 4)
	idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: 5})
	defer idx.Close()
	// Push some epochs through the background rebuilder so the snapshot
	// captures post-swap shard arrays, not the build-time slices.
	idx.Insert(g.Lookups(keys, 500)...)
	idx.Delete(g.Lookups(keys, 200)...)
	idx.Sync()

	var buf bytes.Buffer
	if err := cssidx.SaveSharded(&buf, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := cssidx.LoadSharded(&buf, cssidx.ShardedOptions[uint32]{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != idx.Len() {
		t.Fatalf("restored %d keys, want %d", loaded.Len(), idx.Len())
	}
	if loaded.ShardCount() != idx.ShardCount() {
		t.Fatalf("restored %d shards, want %d", loaded.ShardCount(), idx.ShardCount())
	}
	want, got := idx.Snapshot(), loaded.Snapshot()
	probes := append(g.Lookups(keys, 3000), g.Misses(keys, 3000)...)
	for _, k := range probes {
		if a, b := want.Search(k), got.Search(k); a != b {
			t.Fatalf("Search(%d): %d vs %d", k, a, b)
		}
		if a, b := want.LowerBound(k), got.LowerBound(k); a != b {
			t.Fatalf("LowerBound(%d): %d vs %d", k, a, b)
		}
		af, al := want.EqualRange(k)
		bf, bl := got.EqualRange(k)
		if af != bf || al != bl {
			t.Fatalf("EqualRange(%d): [%d,%d) vs [%d,%d)", k, af, al, bf, bl)
		}
	}
	// The restored index keeps absorbing updates like any other.
	loaded.Insert(7, 7, 7)
	loaded.Sync()
	if got.Len()+3 != loaded.Len() {
		t.Fatalf("restored index did not absorb inserts: %d vs %d", got.Len()+3, loaded.Len())
	}
}

func TestLoadShardedRejectsCorruption(t *testing.T) {
	g := workload.New(154)
	keys := g.SortedWithDuplicates(10000, 3)
	idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: 4})
	defer idx.Close()
	var buf bytes.Buffer
	if err := cssidx.SaveSharded(&buf, idx); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// Flip one key byte deep in the payload: the checksum must catch it.
	corrupt := append([]byte(nil), pristine...)
	corrupt[len(corrupt)-5] ^= 0x40
	if _, err := cssidx.LoadSharded(bytes.NewReader(corrupt), cssidx.ShardedOptions[uint32]{}); err == nil {
		t.Error("corrupt snapshot restored")
	}
	// Truncation must be refused too.
	if _, err := cssidx.LoadSharded(bytes.NewReader(pristine[:len(pristine)/2]), cssidx.ShardedOptions[uint32]{}); err == nil {
		t.Error("truncated snapshot restored")
	}
	// And a wrong magic number.
	bad := append([]byte(nil), pristine...)
	bad[0] ^= 0xff
	if _, err := cssidx.LoadSharded(bytes.NewReader(bad), cssidx.ShardedOptions[uint32]{}); err == nil {
		t.Error("bad magic restored")
	}
	// Corrupt header counts must error out, not drive huge allocations:
	// the shard count lives at header offset 8, the key count at 16.
	hugeShards := append([]byte(nil), pristine...)
	hugeShards[10] = 0xff // Shards |= 0xff0000 → ~16M shards
	if _, err := cssidx.LoadSharded(bytes.NewReader(hugeShards), cssidx.ShardedOptions[uint32]{}); err == nil {
		t.Error("implausible shard count restored")
	}
	hugeN := append([]byte(nil), pristine...)
	hugeN[22] = 0xff // N |= 0xff << 48
	if _, err := cssidx.LoadSharded(bytes.NewReader(hugeN), cssidx.ShardedOptions[uint32]{}); err == nil {
		t.Error("implausible key count restored")
	}
}
