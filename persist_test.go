package cssidx_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := workload.New(150)
	keys := g.SortedDistinct(30000)
	for _, kind := range []cssidx.Kind{cssidx.KindFullCSS, cssidx.KindLevelCSS} {
		idx := cssidx.New(kind, keys, cssidx.Options{})
		var buf bytes.Buffer
		if err := cssidx.SaveIndex(&buf, idx); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		loaded, err := cssidx.LoadIndex(&buf, keys)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if loaded.Name() != idx.Name() {
			t.Errorf("%v: restored as %q", kind, loaded.Name())
		}
		probes := append(g.Lookups(keys, 2000), g.Misses(keys, 2000)...)
		for _, k := range probes {
			if a, b := idx.Search(k), loaded.Search(k); a != b {
				t.Fatalf("%v: snapshot diverges at key %d: %d vs %d", kind, k, a, b)
			}
		}
		if loaded.SpaceBytes() != idx.SpaceBytes() {
			t.Errorf("%v: space changed: %d vs %d", kind, loaded.SpaceBytes(), idx.SpaceBytes())
		}
	}
}

func TestSaveUnsupportedKinds(t *testing.T) {
	g := workload.New(151)
	keys := g.SortedDistinct(100)
	for _, kind := range []cssidx.Kind{
		cssidx.KindBinarySearch, cssidx.KindBST, cssidx.KindTTree,
		cssidx.KindBPlusTree, cssidx.KindHash,
	} {
		idx := cssidx.New(kind, keys, cssidx.Options{})
		if err := cssidx.SaveIndex(&bytes.Buffer{}, idx); err == nil {
			t.Errorf("%v: expected unsupported error", kind)
		}
	}
}

func TestLoadRejectsChangedKeys(t *testing.T) {
	g := workload.New(152)
	keys := g.SortedDistinct(5000)
	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	var buf bytes.Buffer
	if err := cssidx.SaveIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	// OLAP batch arrived: the array changed; the snapshot must be refused.
	changed := append([]uint32(nil), keys...)
	changed[0] = changed[0] + 1
	if _, err := cssidx.LoadIndex(&buf, changed); err == nil {
		t.Error("stale snapshot attached to updated array")
	}
}

func TestSaveLoadShardedRoundTrip(t *testing.T) {
	g := workload.New(153)
	keys := g.SortedWithDuplicates(40000, 4)
	idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: 5})
	defer idx.Close()
	// Push some epochs through the background rebuilder so the snapshot
	// captures post-swap shard arrays, not the build-time slices.
	idx.Insert(g.Lookups(keys, 500)...)
	idx.Delete(g.Lookups(keys, 200)...)
	idx.Sync()

	var buf bytes.Buffer
	if err := cssidx.SaveSharded(&buf, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := cssidx.LoadSharded(&buf, cssidx.ShardedOptions[uint32]{})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if loaded.Len() != idx.Len() {
		t.Fatalf("restored %d keys, want %d", loaded.Len(), idx.Len())
	}
	if loaded.ShardCount() != idx.ShardCount() {
		t.Fatalf("restored %d shards, want %d", loaded.ShardCount(), idx.ShardCount())
	}
	want, got := idx.Snapshot(), loaded.Snapshot()
	probes := append(g.Lookups(keys, 3000), g.Misses(keys, 3000)...)
	for _, k := range probes {
		if a, b := want.Search(k), got.Search(k); a != b {
			t.Fatalf("Search(%d): %d vs %d", k, a, b)
		}
		if a, b := want.LowerBound(k), got.LowerBound(k); a != b {
			t.Fatalf("LowerBound(%d): %d vs %d", k, a, b)
		}
		af, al := want.EqualRange(k)
		bf, bl := got.EqualRange(k)
		if af != bf || al != bl {
			t.Fatalf("EqualRange(%d): [%d,%d) vs [%d,%d)", k, af, al, bf, bl)
		}
	}
	// The restored index keeps absorbing updates like any other.
	loaded.Insert(7, 7, 7)
	loaded.Sync()
	if got.Len()+3 != loaded.Len() {
		t.Fatalf("restored index did not absorb inserts: %d vs %d", got.Len()+3, loaded.Len())
	}
}

func TestLoadShardedRejectsCorruption(t *testing.T) {
	g := workload.New(154)
	keys := g.SortedWithDuplicates(10000, 3)
	idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: 4})
	defer idx.Close()
	var buf bytes.Buffer
	if err := cssidx.SaveSharded(&buf, idx); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// Flip one key byte deep in the payload: the checksum must catch it.
	corrupt := append([]byte(nil), pristine...)
	corrupt[len(corrupt)-5] ^= 0x40
	if _, err := cssidx.LoadSharded(bytes.NewReader(corrupt), cssidx.ShardedOptions[uint32]{}); err == nil {
		t.Error("corrupt snapshot restored")
	}
	// Truncation must be refused too.
	if _, err := cssidx.LoadSharded(bytes.NewReader(pristine[:len(pristine)/2]), cssidx.ShardedOptions[uint32]{}); err == nil {
		t.Error("truncated snapshot restored")
	}
	// And a wrong magic number.
	bad := append([]byte(nil), pristine...)
	bad[0] ^= 0xff
	if _, err := cssidx.LoadSharded(bytes.NewReader(bad), cssidx.ShardedOptions[uint32]{}); err == nil {
		t.Error("bad magic restored")
	}
	// Corrupt header counts must error out, not drive huge allocations:
	// the shard count lives at header offset 8, the key count at 16.
	hugeShards := append([]byte(nil), pristine...)
	hugeShards[10] = 0xff // Shards |= 0xff0000 → ~16M shards
	if _, err := cssidx.LoadSharded(bytes.NewReader(hugeShards), cssidx.ShardedOptions[uint32]{}); err == nil {
		t.Error("implausible shard count restored")
	}
	hugeN := append([]byte(nil), pristine...)
	hugeN[22] = 0xff // N |= 0xff << 48
	if _, err := cssidx.LoadSharded(bytes.NewReader(hugeN), cssidx.ShardedOptions[uint32]{}); err == nil {
		t.Error("implausible key count restored")
	}
}

func TestSaveFileAtomicRoundTrip(t *testing.T) {
	g := workload.New(155)
	keys := g.SortedDistinct(20000)
	dir := t.TempDir()

	ipath := filepath.Join(dir, "tree.snap")
	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	if err := cssidx.SaveIndexFile(ipath, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := cssidx.LoadIndexFile(ipath, keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range append(g.Lookups(keys, 1000), g.Misses(keys, 1000)...) {
		if a, b := idx.Search(k), loaded.Search(k); a != b {
			t.Fatalf("Search(%d): %d vs %d", k, a, b)
		}
	}

	spath := filepath.Join(dir, "sharded.snap")
	sh := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: 4})
	defer sh.Close()
	if err := cssidx.SaveShardedFile(spath, sh); err != nil {
		t.Fatal(err)
	}
	restored, err := cssidx.LoadShardedFile(spath, cssidx.ShardedOptions[uint32]{})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.Len() != sh.Len() {
		t.Fatalf("restored %d keys, want %d", restored.Len(), sh.Len())
	}
	// The save must leave no temp litter behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after atomic saves: %v", names)
	}
}

// TestSaveFileAtomicSurvivesTornWrite models the crash the atomic commit
// exists for: a writer that dies mid-stream must leave the previous
// snapshot readable, and a torn prefix written *without* the atomic path
// must be rejected by the checksum rather than restored.
func TestSaveFileAtomicSurvivesTornWrite(t *testing.T) {
	g := workload.New(156)
	keys := g.SortedWithDuplicates(15000, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "sharded.snap")

	sh := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: 4})
	defer sh.Close()
	if err := cssidx.SaveShardedFile(path, sh); err != nil {
		t.Fatal(err)
	}

	// Crash simulation 1: a later save dies before its rename — the temp
	// file holds a torn prefix, the committed snapshot is untouched.
	var full bytes.Buffer
	if err := cssidx.SaveSharded(&full, sh); err != nil {
		t.Fatal(err)
	}
	torn := full.Bytes()[:full.Len()/3]
	if err := os.WriteFile(filepath.Join(dir, "sharded.snap.tmp1234"), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cssidx.LoadShardedFile(path, cssidx.ShardedOptions[uint32]{}); err != nil {
		t.Fatalf("committed snapshot unreadable after torn temp write: %v", err)
	}

	// Crash simulation 2: a non-atomic writer tore the snapshot itself —
	// the load must refuse the prefix instead of serving a partial index.
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cssidx.LoadShardedFile(path, cssidx.ShardedOptions[uint32]{}); err == nil {
		t.Fatal("torn snapshot prefix restored")
	}

	// Re-committing through the atomic path repairs the file in one step.
	if err := cssidx.SaveShardedFile(path, sh); err != nil {
		t.Fatal(err)
	}
	restored, err := cssidx.LoadShardedFile(path, cssidx.ShardedOptions[uint32]{})
	if err != nil {
		t.Fatal(err)
	}
	restored.Close()
}
