package cssidx

import (
	"bytes"
	"testing"
)

// fuzzKeys is the fixed sorted array the fuzzed index snapshots attach
// to: corrupt snapshot bytes must produce an error, never a panic or an
// allocation beyond the input's own size class.
func fuzzKeys() []Key {
	keys := make([]Key, 1000)
	for i := range keys {
		keys[i] = Key(3 * i)
	}
	return keys
}

func FuzzLoadIndex(f *testing.F) {
	keys := fuzzKeys()
	// Seed with both valid variants so the fuzzer mutates real
	// snapshots, not just noise.
	for _, kind := range []Kind{KindFullCSS, KindLevelCSS} {
		idx := New(kind, keys, Options{})
		var buf bytes.Buffer
		if err := SaveIndex(&buf, idx); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := LoadIndex(bytes.NewReader(data), keys)
		if err != nil {
			return
		}
		// A snapshot that loads must serve queries sanely.
		for _, k := range []Key{0, 3, 500, 2997, 5000} {
			pos := idx.Search(k)
			if pos >= len(keys) || (pos >= 0 && keys[pos] != k) {
				t.Fatalf("restored index: Search(%d) = %d", k, pos)
			}
		}
	})
}

// Note: sustained `go test -fuzz=FuzzLoadSharded` sessions on single-CPU
// machines can stall inside the fuzz engine's minimizer (the engine has no
// per-exec timeout); the saved corpus under testdata/fuzz runs clean as
// regular subtests, which is what `go test` and CI execute.
func FuzzLoadSharded(f *testing.F) {
	opts := ShardedOptions[uint32]{Shards: 4}
	keys := make([]uint32, 500)
	for i := range keys {
		keys[i] = uint32(7 * i)
	}
	x := NewSharded(keys, opts)
	var buf bytes.Buffer
	if err := SaveSharded(&buf, x); err != nil {
		f.Fatal(err)
	}
	x.Close()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		y, err := LoadSharded(bytes.NewReader(data), opts)
		if err != nil {
			return
		}
		defer y.Close()
		for _, k := range []uint32{0, 7, 3493, 9999} {
			pos := y.Search(k)
			if pos >= y.Len() {
				t.Fatalf("restored sharded: Search(%d) = %d with Len %d", k, pos, y.Len())
			}
		}
	})
}
