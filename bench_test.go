// Benchmarks regenerating the paper's tables and figures with testing.B.
// One benchmark (family) per artifact:
//
//	BenchmarkFig9Build          — Figure 9: CSS-tree build time vs array size
//	BenchmarkFig10VaryN         — Figures 10/11: lookup time vs array size
//	BenchmarkFig12VaryNode      — Figures 12/13: lookup time vs node size
//	BenchmarkFig14SpaceTime     — Figure 2/14: space (reported metric) + time
//	BenchmarkTable1CostModel    — Figure 6/Table 1: analytic model evaluation
//	BenchmarkAblation*          — design-choice ablations called out in DESIGN.md
//	BenchmarkJoin               — §2.2 indexed nested-loop join
//
// Wall-clock numbers land wherever the host CPU puts them; the reproduction
// target is the *shape* (see EXPERIMENTS.md).  The deterministic,
// paper-machine versions of figs 10–13 come from `cssbench -run figNN`.
package cssidx_test

import (
	"fmt"
	"testing"

	"cssidx"
	"cssidx/internal/bench"
	"cssidx/internal/csstree"
	"cssidx/internal/mmdb"
	"cssidx/internal/workload"
)

// benchSink defeats dead-code elimination.
var benchSink int

// probeSet builds keys plus a random matching lookup stream.
func probeSet(n, lookups int) (keys, probes []uint32) {
	g := workload.New(1)
	keys = g.SortedUniform(n)
	probes = g.Lookups(keys, lookups)
	return keys, probes
}

// runLookups cycles b.N lookups through the probe stream.
func runLookups(b *testing.B, search func(uint32) int, probes []uint32) {
	b.Helper()
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += search(probes[i%len(probes)])
	}
	benchSink += s
}

// --- Figure 9: build time -----------------------------------------------------

func BenchmarkFig9Build(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000, 5_000_000} {
		g := workload.New(1)
		keys := g.SortedUniform(n)
		b.Run(fmt.Sprintf("full/n=%d", n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink += csstree.BuildFull(keys, 16).SpaceBytes()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mkeys/s")
		})
		b.Run(fmt.Sprintf("level/n=%d", n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink += csstree.BuildLevel(keys, 16).SpaceBytes()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mkeys/s")
		})
	}
}

// --- Figures 10/11: vary array size --------------------------------------------

func BenchmarkFig10VaryN(b *testing.B) {
	for _, n := range []int{10_000, 1_000_000, 10_000_000} {
		if testing.Short() && n > 1_000_000 {
			continue
		}
		keys, probes := probeSet(n, 100_000)
		for _, kind := range cssidx.Kinds() {
			idx := cssidx.New(kind, keys, cssidx.Options{})
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				runLookups(b, idx.Search, probes)
			})
		}
	}
}

// --- Figures 12/13: vary node size ----------------------------------------------

func BenchmarkFig12VaryNode(b *testing.B) {
	keys, probes := probeSet(1_000_000, 100_000)
	for _, nodeBytes := range []int{32, 64, 96, 128, 256, 512} {
		for _, kind := range []cssidx.Kind{
			cssidx.KindTTree, cssidx.KindBPlusTree, cssidx.KindFullCSS, cssidx.KindLevelCSS,
		} {
			if kind == cssidx.KindLevelCSS && nodeBytes&(nodeBytes-1) != 0 {
				continue // level CSS-trees need power-of-two nodes
			}
			idx := cssidx.New(kind, keys, cssidx.Options{NodeBytes: nodeBytes})
			b.Run(fmt.Sprintf("%s/node=%dB", kind, nodeBytes), func(b *testing.B) {
				runLookups(b, idx.Search, probes)
				b.ReportMetric(float64(idx.SpaceBytes()), "space-bytes")
			})
		}
	}
}

// --- Figure 2/14: space/time ------------------------------------------------------

func BenchmarkFig14SpaceTime(b *testing.B) {
	keys, probes := probeSet(2_000_000, 100_000)
	for _, kind := range cssidx.Kinds() {
		idx := cssidx.New(kind, keys, cssidx.Options{})
		b.Run(kind.String(), func(b *testing.B) {
			runLookups(b, idx.Search, probes)
			space := idx.SpaceBytes()
			if kind == cssidx.KindHash {
				space += 4 * len(keys) // ordered RID list kept besides the hash (Figure 7)
			}
			b.ReportMetric(float64(space), "space-bytes")
		})
	}
}

// --- Figure 6 / Table 1: the analytic model itself ---------------------------------

func BenchmarkTable1CostModel(b *testing.B) {
	cfg := bench.Config{Quick: true, Lookups: 1000, Repeats: 1}
	e, _ := bench.Lookup("fig6")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg, discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// --- Ablations ----------------------------------------------------------------------

// BenchmarkAblationGenericNodeSearch quantifies §6.2's code-specialisation
// claim: the generic (loop) within-node search vs the hard-coded unrolled
// one.  The paper measured the generic version 20–45% slower.
func BenchmarkAblationGenericNodeSearch(b *testing.B) {
	keys, probes := probeSet(5_000_000, 100_000)
	full := csstree.BuildFull(keys, 16)
	level := csstree.BuildLevel(keys, 16)
	b.Run("full/specialised", func(b *testing.B) { runLookups(b, full.LowerBound, probes) })
	b.Run("full/generic", func(b *testing.B) { runLookups(b, full.LowerBoundGeneric, probes) })
	b.Run("level/specialised", func(b *testing.B) { runLookups(b, level.LowerBound, probes) })
	b.Run("level/generic", func(b *testing.B) { runLookups(b, level.LowerBoundGeneric, probes) })
}

// BenchmarkAblationNodeLineAlignment reproduces the Figure 12 "bump": a
// 96-byte node (24 slots) straddles cache lines and needs multiply/divide
// child arithmetic, where 64- and 128-byte nodes divide evenly.
func BenchmarkAblationNodeLineAlignment(b *testing.B) {
	keys, probes := probeSet(5_000_000, 100_000)
	for _, m := range []int{16, 24, 32} {
		tr := csstree.BuildFull(keys, m)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			runLookups(b, tr.LowerBound, probes)
		})
	}
}

// BenchmarkAblationFullVsLevel isolates §4.2's trade: level trees do fewer
// comparisons, full trees touch fewer nodes.  The paper saw level trees up
// to 8% faster.
func BenchmarkAblationFullVsLevel(b *testing.B) {
	keys, probes := probeSet(10_000_000, 100_000)
	full := csstree.BuildFull(keys, 16)
	level := csstree.BuildLevel(keys, 16)
	b.Run("full", func(b *testing.B) { runLookups(b, full.LowerBound, probes) })
	b.Run("level", func(b *testing.B) { runLookups(b, level.LowerBound, probes) })
}

// --- §2.2: indexed nested-loop join ---------------------------------------------------

func BenchmarkJoin(b *testing.B) {
	g := workload.New(3)
	innerKeys := g.SortedUniform(100_000)
	outerVals := g.Lookups(innerKeys, 200_000)

	inner := mmdb.NewTable("inner")
	if err := inner.AddColumn("k", innerKeys); err != nil {
		b.Fatal(err)
	}
	outer := mmdb.NewTable("outer")
	if err := outer.AddColumn("k", outerVals); err != nil {
		b.Fatal(err)
	}
	for _, kind := range []cssidx.Kind{cssidx.KindLevelCSS, cssidx.KindBPlusTree, cssidx.KindTTree, cssidx.KindHash} {
		ix, err := inner.BuildIndex("k", kind, cssidx.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.String(), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := mmdb.Join(outer, "k", ix, nil)
				if err != nil {
					b.Fatal(err)
				}
				benchSink += n
			}
			b.ReportMetric(float64(outer.Rows())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mprobes/s")
		})
	}
}
