package cssidx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sync"

	"cssidx/internal/failfs"
	"cssidx/internal/wal"
)

// DurableSharded is a uint32 sharded index whose Insert/Delete batches
// are write-ahead logged: every mutation is appended to a checksummed
// log — fsynced per the configured wal.Policy — before the in-memory
// index absorbs it, so a crash between Checkpoint snapshots loses
// nothing the policy promised to keep.  See OpenWAL for the recovery
// protocol and the per-policy guarantee.
//
// Reads go straight to the embedded ShardedIndex with zero overhead;
// Insert/Delete/Checkpoint/Close are intercepted.  Mutations are safe
// for concurrent use (serialized through the log); reads are lock-free
// as always.
type DurableSharded struct {
	*ShardedIndex[uint32]

	fsys     failfs.FS
	snapPath string
	opts     ShardedOptions[uint32]

	mu      sync.Mutex
	log     *wal.Log
	lastSeq uint64 // last sequence absorbed by the in-memory index
}

// Sharded WAL record: op byte, key count, keys.
const (
	shardOpInsert = 1
	shardOpDelete = 2
)

func encodeShardOp(op byte, keys []uint32) []byte {
	buf := make([]byte, 5+4*len(keys))
	buf[0] = op
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(keys)))
	for i, k := range keys {
		binary.LittleEndian.PutUint32(buf[5+4*i:], k)
	}
	return buf
}

func decodeShardOp(payload []byte) (op byte, keys []uint32, err error) {
	if len(payload) < 5 {
		return 0, nil, fmt.Errorf("cssidx: short wal record (%d bytes)", len(payload))
	}
	op = payload[0]
	if op != shardOpInsert && op != shardOpDelete {
		return 0, nil, fmt.Errorf("cssidx: unknown wal op %d", op)
	}
	n := binary.LittleEndian.Uint32(payload[1:5])
	if uint64(len(payload)) != 5+4*uint64(n) {
		return 0, nil, fmt.Errorf("cssidx: wal record claims %d keys in %d bytes", n, len(payload))
	}
	keys = make([]uint32, n)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint32(payload[5+4*i:])
	}
	return op, keys, nil
}

// OpenWAL opens — or recovers — a durable uint32 sharded index rooted at
// dir: the snapshot lives in dir/name.snap, the write-ahead log in
// dir/name.wal.  On open, the snapshot (if any) is loaded and every log
// record after the snapshot's covered sequence is replayed into the
// index, with a torn log tail detected by checksum and truncated; the
// result is exactly the state the durability policy promised at the
// crash instant.
//
// The crash guarantee, per policy: with wal.Always an Insert/Delete that
// returned is durable; with wal.GroupCommit it is durable within the
// group-commit window (never reordered, never torn); with wal.None only
// Checkpoint/Sync/Close boundaries are durable.  In every mode recovery
// yields a clean prefix of acknowledged mutations — a batch is either
// fully recovered or (beyond the promised watermark) fully absent.
//
// Checkpoint folds the log into a fresh snapshot and truncates it;
// recovery cost is proportional to the log since the last Checkpoint.
//
// fsys nil means the real filesystem.
func OpenWAL(fsys failfs.FS, dir, name string, opts ShardedOptions[uint32], pol wal.Policy) (*DurableSharded, error) {
	if fsys == nil {
		fsys = failfs.OS
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("cssidx: creating %s: %w", dir, err)
	}
	snapPath := filepath.Join(dir, name+".snap")
	walPath := filepath.Join(dir, name+".wal")

	// Load the snapshot when one exists; its trailer names the last wal
	// sequence it absorbed.
	var (
		x       *ShardedIndex[uint32]
		snapSeq uint64
	)
	ix, seq, err := loadShardedSnapshot(fsys, snapPath, opts)
	switch {
	case err == nil:
		x, snapSeq = ix, seq
	case isNotExist(err):
		x = NewSharded[uint32](nil, opts)
	default:
		return nil, err
	}

	log, recs, err := wal.Open(fsys, walPath, pol)
	if err != nil {
		x.Close()
		return nil, err
	}
	if err := log.Advance(snapSeq); err != nil {
		log.Close()
		x.Close()
		return nil, err
	}
	lastSeq := snapSeq
	for _, rec := range recs {
		if rec.Seq <= snapSeq {
			continue // already folded into the snapshot
		}
		op, keys, derr := decodeShardOp(rec.Payload)
		if derr != nil {
			// A checksummed record that does not decode is a logic
			// error, not corruption; refuse rather than guess.
			log.Close()
			x.Close()
			return nil, derr
		}
		if op == shardOpInsert {
			x.Insert(keys...)
		} else {
			x.Delete(keys...)
		}
		lastSeq = rec.Seq
	}
	x.Sync() // replayed mutations become visible before the first read
	return &DurableSharded{
		ShardedIndex: x,
		fsys:         fsys,
		snapPath:     snapPath,
		opts:         opts,
		log:          log,
		lastSeq:      lastSeq,
	}, nil
}

// isNotExist reports whether err means "no snapshot yet" (fs.ErrNotExist
// from any FS implementation).
func isNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// Insert logs the keys, then enqueues them for insertion; when it
// returns nil the batch is on the log per the policy (see OpenWAL) and
// will become visible at the affected shards' next epoch-swaps.
func (d *DurableSharded) Insert(keys ...uint32) error {
	return d.logOp(shardOpInsert, keys)
}

// Delete logs the keys, then enqueues them for deletion (multiset
// semantics, like ShardedIndex.Delete); same durability as Insert.
func (d *DurableSharded) Delete(keys ...uint32) error {
	return d.logOp(shardOpDelete, keys)
}

func (d *DurableSharded) logOp(op byte, keys []uint32) error {
	if len(keys) == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	seq, err := d.log.Append(encodeShardOp(op, keys))
	if err != nil {
		return err
	}
	if op == shardOpInsert {
		d.ShardedIndex.Insert(keys...)
	} else {
		d.ShardedIndex.Delete(keys...)
	}
	d.lastSeq = seq
	return nil
}

// SyncWAL forces every acknowledged mutation durable now, regardless of
// policy.  (Sync, unqualified, remains the ShardedIndex visibility wait.)
func (d *DurableSharded) SyncWAL() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Sync()
}

// SyncedSeq reports the last log sequence known durable.
func (d *DurableSharded) SyncedSeq() uint64 { return d.log.SyncedSeq() }

// LastSeq reports the last log sequence absorbed by the index.
func (d *DurableSharded) LastSeq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastSeq
}

// LogSize reports the write-ahead log's current size in bytes: the
// recovery debt a Checkpoint would clear.
func (d *DurableSharded) LogSize() int64 { return d.log.Size() }

// Checkpoint captures the index in a fresh snapshot (atomically: temp +
// fsync + rename + directory fsync) and truncates the log.  The snapshot
// records the log sequence it absorbed, so a crash anywhere inside
// Checkpoint recovers correctly: an old snapshot with a full log, or the
// new snapshot with (equivalently) the old log or the truncated one —
// replay skips records the snapshot already owns.
func (d *DurableSharded) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Every logged mutation must be visible in the view the snapshot
	// captures; Sync waits for the background rebuilder.
	d.ShardedIndex.Sync()
	seq := d.lastSeq
	if err := writeFileAtomic(d.fsys, d.snapPath, func(w io.Writer) error {
		return saveShardedSnapshot(w, d.ShardedIndex, seq)
	}); err != nil {
		return err
	}
	return d.log.Checkpoint()
}

// Close syncs and closes the log, then stops the index's background
// rebuilder.  No implicit checkpoint: recovery replays the log.
func (d *DurableSharded) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.log.Close()
	d.ShardedIndex.Close()
	return err
}

// --- snapshot + sequence trailer ---------------------------------------------

// saveShardedSnapshot writes the wal sequence header, then the ordinary
// SaveSharded image.
func saveShardedSnapshot(w io.Writer, x *ShardedIndex[uint32], seq uint64) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], seq)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	return SaveSharded(w, x)
}

// loadShardedSnapshot reads a snapshot written by saveShardedSnapshot.
func loadShardedSnapshot(fsys failfs.FS, path string, opts ShardedOptions[uint32]) (*ShardedIndex[uint32], uint64, error) {
	gcStaleTemps(fsys, path)
	f, err := fsys.Open(path)
	if err != nil {
		return nil, 0, err
	}
	var seq uint64
	var hdr [8]byte
	x, err := func() (*ShardedIndex[uint32], error) {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil, fmt.Errorf("cssidx: reading snapshot sequence: %w", err)
		}
		seq = binary.LittleEndian.Uint64(hdr[:])
		return LoadSharded(f, opts)
	}()
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return nil, 0, err
	}
	return x, seq, nil
}
