package cssidx

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"cssidx/internal/csstree"
	"cssidx/internal/failfs"
	"cssidx/internal/shard"
)

// SaveIndex writes a restartable snapshot of a CSS-tree index (either
// variant) to w.  The snapshot holds the directory and a checksum of the
// indexed keys; the sorted array itself is not stored — on restart it is
// re-attached with LoadIndex, which verifies the checksum so a stale
// snapshot cannot silently index the wrong data.
//
// Durability is the caller's: SaveIndex only writes to w.  Use
// SaveIndexFile for the atomic temp+fsync+rename commit whose crash
// guarantee is "the previous snapshot or the new one, never a torn
// prefix".
//
// Only CSS-trees are snapshottable: the other methods either need no
// structure (array searches) or rebuild quickly enough that persisting them
// has no benefit over their bulk load.
func SaveIndex(w io.Writer, idx Index) error {
	switch x := idx.(type) {
	case fullCSS:
		_, err := x.t.WriteTo(w)
		return err
	case levelCSS:
		_, err := x.t.WriteTo(w)
		return err
	default:
		return fmt.Errorf("cssidx: %s does not support snapshots", idx.Name())
	}
}

// LoadIndex restores a snapshot written by SaveIndex over keys, which must
// be the identical sorted array the snapshot was built from.  Corrupt or
// truncated input returns an error — never a panic — and allocations are
// capped by the validated header, so hostile bytes cannot balloon memory.
func LoadIndex(r io.Reader, keys []Key) (OrderedIndex, error) {
	tr, err := csstree.Restore(r, keys)
	if err != nil {
		return nil, err
	}
	switch t := tr.(type) {
	case *csstree.Full:
		return fullCSS{t}, nil
	case *csstree.Level:
		return levelCSS{t}, nil
	default:
		return nil, fmt.Errorf("cssidx: unknown snapshot variant %T", tr)
	}
}

// SaveSharded writes a restartable snapshot of a uint32 sharded index: the
// shard boundaries and every shard's sorted key array, captured from one
// frozen cross-shard view (checksummed).  Pending updates not yet absorbed
// by the background rebuilder are not captured; call Sync first when they
// must be.  Unlike SaveIndex, the snapshot is self-contained — shards own
// their arrays after epoch-swaps, so the keys travel with the boundaries.
//
// Like SaveIndex, this writes to w with no durability of its own; see
// SaveShardedFile for the atomic crash-safe commit, and OpenWAL for
// continuous durability of Insert/Delete batches between snapshots.
func SaveSharded(w io.Writer, x *ShardedIndex[uint32]) error {
	return shard.SaveU32(w, x.ix.View())
}

// LoadSharded restores a snapshot written by SaveSharded, rebuilding each
// shard's CSS-tree from its key array (building is the cheap half of the
// paper's rebuild-don't-maintain cycle).  opts supplies the serving knobs
// — NodeSlots, Schedule/SortBatches, Parallel — while Shards and
// SkewSample are ignored: the partition comes from the snapshot.
// Corrupt or truncated input returns an error — never a panic — and
// reads are chunked so absurd length prefixes cannot force huge
// allocations.
func LoadSharded(r io.Reader, opts ShardedOptions[uint32]) (*ShardedIndex[uint32], error) {
	keys, bounds, err := shard.LoadU32(r)
	if err != nil {
		return nil, err
	}
	return newShardedFrom(keys, bounds, opts), nil
}

// --- atomic file commits ------------------------------------------------------

// writeFileAtomic commits the bytes write produces to path with
// all-or-nothing visibility: the data lands in a temporary file in the same
// directory, is fsynced, and only then renamed over path, with the
// directory fsynced so the rename itself survives a crash.  A reader (or a
// restart) therefore sees either the complete old snapshot or the complete
// new one — never a torn prefix, which the snapshot checksums would reject
// and which a plain truncate-and-rewrite save can leave behind.
//
// Every error path — including a failed Close or directory sync — is
// propagated, and the temporary file is unlinked on any failure so an
// aborted save leaves no litter.
func writeFileAtomic(fsys failfs.FS, path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		// Close may surface a deferred write-back error: the snapshot
		// is suspect, so abandon it.
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.SyncDir(dir); err != nil {
		// The rename happened but its durability is unknown; the old
		// temp name is gone either way.  Report it.
		return err
	}
	return nil
}

// gcStaleTemps removes leftover temporary files from aborted atomic saves
// of path: any sibling named like path's base plus a ".tmp" suffix.  Loads
// call it so a crash mid-save (which the atomic protocol makes harmless
// but cannot clean up) does not accumulate litter.  Callers must not race
// it against a concurrent save of the same path.
func gcStaleTemps(fsys failfs.FS, path string) {
	dir := filepath.Dir(path)
	prefix := filepath.Base(path) + ".tmp"
	names, err := fsys.List(dir)
	if err != nil {
		return // best effort: the load itself will surface real trouble
	}
	for _, name := range names {
		if strings.HasPrefix(name, prefix) {
			fsys.Remove(filepath.Join(dir, name))
		}
	}
}

// loadFile opens path on fsys, GCs stale temp litter beside it, and hands
// the open file to load.
func loadFile[T any](fsys failfs.FS, path string, load func(io.Reader) (T, error)) (T, error) {
	var zero T
	gcStaleTemps(fsys, path)
	f, err := fsys.Open(path)
	if err != nil {
		return zero, err
	}
	v, err := load(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return zero, err
	}
	return v, nil
}

// SaveIndexFile writes a SaveIndex snapshot to path atomically (temp file +
// fsync + rename + directory fsync).
//
// Crash guarantee: at every instant path holds either the complete
// previous snapshot or the complete new one.  A crash mid-save can leave
// a stale temp file beside it, which the next LoadIndexFile removes.
func SaveIndexFile(path string, idx Index) error {
	return writeFileAtomic(failfs.OS, path, func(w io.Writer) error { return SaveIndex(w, idx) })
}

// LoadIndexFile restores a snapshot written by SaveIndexFile over keys,
// first sweeping any stale temp files an interrupted save left beside it.
func LoadIndexFile(path string, keys []Key) (OrderedIndex, error) {
	return loadFile(failfs.OS, path, func(r io.Reader) (OrderedIndex, error) {
		return LoadIndex(r, keys)
	})
}

// SaveShardedFile writes a SaveSharded snapshot to path atomically (temp
// file + fsync + rename + directory fsync); see SaveIndexFile for the
// crash guarantee.
func SaveShardedFile(path string, x *ShardedIndex[uint32]) error {
	return writeFileAtomic(failfs.OS, path, func(w io.Writer) error { return SaveSharded(w, x) })
}

// LoadShardedFile restores a snapshot written by SaveShardedFile, first
// sweeping any stale temp files an interrupted save left beside it.
func LoadShardedFile(path string, opts ShardedOptions[uint32]) (*ShardedIndex[uint32], error) {
	return loadFile(failfs.OS, path, func(r io.Reader) (*ShardedIndex[uint32], error) {
		return LoadSharded(r, opts)
	})
}
