package cssidx

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cssidx/internal/csstree"
	"cssidx/internal/shard"
)

// SaveIndex writes a restartable snapshot of a CSS-tree index (either
// variant) to w.  The snapshot holds the directory and a checksum of the
// indexed keys; the sorted array itself is not stored — on restart it is
// re-attached with LoadIndex, which verifies the checksum so a stale
// snapshot cannot silently index the wrong data.
//
// Only CSS-trees are snapshottable: the other methods either need no
// structure (array searches) or rebuild quickly enough that persisting them
// has no benefit over their bulk load.
func SaveIndex(w io.Writer, idx Index) error {
	switch x := idx.(type) {
	case fullCSS:
		_, err := x.t.WriteTo(w)
		return err
	case levelCSS:
		_, err := x.t.WriteTo(w)
		return err
	default:
		return fmt.Errorf("cssidx: %s does not support snapshots", idx.Name())
	}
}

// LoadIndex restores a snapshot written by SaveIndex over keys, which must
// be the identical sorted array the snapshot was built from.
func LoadIndex(r io.Reader, keys []Key) (OrderedIndex, error) {
	tr, err := csstree.Restore(r, keys)
	if err != nil {
		return nil, err
	}
	switch t := tr.(type) {
	case *csstree.Full:
		return fullCSS{t}, nil
	case *csstree.Level:
		return levelCSS{t}, nil
	default:
		return nil, fmt.Errorf("cssidx: unknown snapshot variant %T", tr)
	}
}

// SaveSharded writes a restartable snapshot of a uint32 sharded index: the
// shard boundaries and every shard's sorted key array, captured from one
// frozen cross-shard view (checksummed).  Pending updates not yet absorbed
// by the background rebuilder are not captured; call Sync first when they
// must be.  Unlike SaveIndex, the snapshot is self-contained — shards own
// their arrays after epoch-swaps, so the keys travel with the boundaries.
func SaveSharded(w io.Writer, x *ShardedIndex[uint32]) error {
	return shard.SaveU32(w, x.ix.View())
}

// LoadSharded restores a snapshot written by SaveSharded, rebuilding each
// shard's CSS-tree from its key array (building is the cheap half of the
// paper's rebuild-don't-maintain cycle).  opts supplies the serving knobs
// — NodeSlots, Schedule/SortBatches, Parallel — while Shards and
// SkewSample are ignored: the partition comes from the snapshot.
func LoadSharded(r io.Reader, opts ShardedOptions[uint32]) (*ShardedIndex[uint32], error) {
	keys, bounds, err := shard.LoadU32(r)
	if err != nil {
		return nil, err
	}
	return newShardedFrom(keys, bounds, opts), nil
}

// --- atomic file commits ------------------------------------------------------

// writeFileAtomic commits the bytes write produces to path with
// all-or-nothing visibility: the data lands in a temporary file in the same
// directory, is fsynced, and only then renamed over path, with the
// directory fsynced so the rename itself survives a crash.  A reader (or a
// restart) therefore sees either the complete old snapshot or the complete
// new one — never a torn prefix, which the snapshot checksums would reject
// and which a plain truncate-and-rewrite save can leave behind.
func writeFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	d, derr := os.Open(dir)
	if derr != nil {
		return derr
	}
	defer d.Close()
	if derr = d.Sync(); derr != nil {
		return derr
	}
	return nil
}

// SaveIndexFile writes a SaveIndex snapshot to path atomically (temp file +
// fsync + rename): a crash mid-save leaves the previous snapshot intact
// instead of a torn prefix.
func SaveIndexFile(path string, idx Index) error {
	return writeFileAtomic(path, func(w io.Writer) error { return SaveIndex(w, idx) })
}

// LoadIndexFile restores a snapshot written by SaveIndexFile over keys.
func LoadIndexFile(path string, keys []Key) (OrderedIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadIndex(f, keys)
}

// SaveShardedFile writes a SaveSharded snapshot to path atomically (temp
// file + fsync + rename); see SaveIndexFile for the crash guarantee.
func SaveShardedFile(path string, x *ShardedIndex[uint32]) error {
	return writeFileAtomic(path, func(w io.Writer) error { return SaveSharded(w, x) })
}

// LoadShardedFile restores a snapshot written by SaveShardedFile.
func LoadShardedFile(path string, opts ShardedOptions[uint32]) (*ShardedIndex[uint32], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSharded(f, opts)
}
