package cssidx_test

// Benchmarks for the parallel batch engine: the acceptance shape is parallel
// SearchBatch on a ≥64k-probe batch beating the single-threaded lockstep
// kernel once GOMAXPROCS ≥ 4 (each worker keeps its own complement of
// independent cache misses in flight), and the engine at one worker matching
// the bare kernel.  `cssbench -run parallel -json` records the same sweep
// machine-readably (BENCH_parallel.json).

import (
	"fmt"
	"testing"

	"cssidx"
	"cssidx/internal/mmdb"
	"cssidx/internal/workload"
)

// mmdbTable builds a one-column table.
func mmdbTable(b *testing.B, name string, vals []uint32) *mmdb.Table {
	b.Helper()
	t := mmdb.NewTable(name)
	if err := t.AddColumn("k", vals); err != nil {
		b.Fatal(err)
	}
	return t
}

// mmdbJoin counts the join result at one worker setting.
func mmdbJoin(outer *mmdb.Table, ix *mmdb.SortedIndex, workers int) (int, error) {
	return mmdb.JoinWith(outer, "k", ix, mmdb.JoinOptions{
		Parallel: cssidx.ParallelOptions{Workers: workers},
	}, nil)
}

// batchBenchSetup builds the tree and one large probe batch.
func batchBenchSetup(b *testing.B, n, batch int) (cssidx.OrderedIndex, []uint32, []int32) {
	b.Helper()
	g := workload.New(1)
	keys := g.SortedUniform(n)
	probes := g.Lookups(keys, batch)
	return cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes), probes, make([]int32, batch)
}

// BenchmarkParallelSearchBatch64k sweeps worker counts over one 64k-probe
// batch; the "lockstep" case is the kernel with no engine around it.
func BenchmarkParallelSearchBatch64k(b *testing.B) {
	n := 10_000_000
	if testing.Short() {
		n = 1_000_000
	}
	level, probes, out := batchBenchSetup(b, n, 1<<16)

	seq := cssidx.AsBatchOrdered(level)
	b.Run("lockstep", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seq.SearchBatch(probes, out)
		}
		b.ReportMetric(float64(len(probes))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mprobes/s")
	})
	for _, w := range []int{1, 2, 4, 8, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=GOMAXPROCS"
		}
		par := cssidx.NewParallel(level, cssidx.ParallelOptions{Workers: w})
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				par.SearchBatch(probes, out)
			}
			b.ReportMetric(float64(len(probes))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mprobes/s")
		})
	}
}

// BenchmarkParallelShardedBatch64k is the same sweep through the sharded
// serving layer: per-shard runs fan across the pool, one frozen epoch per
// batch.
func BenchmarkParallelShardedBatch64k(b *testing.B) {
	n := 10_000_000
	if testing.Short() {
		n = 1_000_000
	}
	g := workload.New(1)
	keys := g.SortedUniform(n)
	probes := g.Lookups(keys, 1<<16)
	out := make([]int32, len(probes))
	for _, w := range []int{1, 4, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=GOMAXPROCS"
		}
		idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{
			Shards:   4,
			Parallel: cssidx.ParallelOptions{Workers: w},
		})
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.SearchBatch(probes, out)
			}
			b.ReportMetric(float64(len(probes))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mprobes/s")
		})
		idx.Close()
	}
}

// BenchmarkParallelJoin drives the §2.2 join through the engine.
func BenchmarkParallelJoin(b *testing.B) {
	benchJoinWorkers(b, []int{1, 4, 0})
}

func benchJoinWorkers(b *testing.B, workerCounts []int) {
	b.Helper()
	g := workload.New(3)
	innerN, outerN := 1_000_000, 1<<17
	if testing.Short() {
		innerN, outerN = 100_000, 1<<15
	}
	innerKeys := g.SortedUniform(innerN)
	outerVals := g.Lookups(innerKeys, outerN)
	innerT := mmdbTable(b, "inner", innerKeys)
	outerT := mmdbTable(b, "outer", outerVals)
	ix, err := innerT.BuildIndex("k", cssidx.KindLevelCSS, cssidx.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workerCounts {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := mmdbJoin(outerT, ix, w)
				if err != nil {
					b.Fatal(err)
				}
				benchSink += n
			}
			b.ReportMetric(float64(outerN)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mprobes/s")
		})
	}
}
