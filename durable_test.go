package cssidx

import (
	"testing"

	"cssidx/internal/failfs"
	"cssidx/internal/wal"
)

func durableOpts() ShardedOptions[uint32] {
	return ShardedOptions[uint32]{Shards: 4}
}

func collectKeys(t *testing.T, x *DurableSharded) []uint32 {
	t.Helper()
	x.ShardedIndex.Sync()
	out := make([]uint32, 0, x.Len())
	x.Ascend(0, ^uint32(0), func(pos int, key uint32) bool {
		out = append(out, key)
		return true
	})
	return out
}

func TestDurableShardedRoundTrip(t *testing.T) {
	fsys := failfs.NewMem(1)
	x, err := OpenWAL(fsys, "db", "idx", durableOpts(), wal.Always())
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(5, 1, 9, 3); err != nil {
		t.Fatal(err)
	}
	if err := x.Delete(9); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(7); err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 3, 5, 7}
	got := collectKeys(t, x)
	if len(got) != len(want) {
		t.Fatalf("live keys = %v, want %v", got, want)
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything was acknowledged under Always, so everything
	// must come back.
	y, err := OpenWAL(fsys, "db", "idx", durableOpts(), wal.Always())
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	got = collectKeys(t, y)
	for i, k := range want {
		if i >= len(got) || got[i] != k {
			t.Fatalf("recovered keys = %v, want %v", got, want)
		}
	}
	if y.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3", y.LastSeq())
	}
}

func TestDurableShardedCheckpointTruncatesLog(t *testing.T) {
	fsys := failfs.NewMem(2)
	x, err := OpenWAL(fsys, "db", "idx", durableOpts(), wal.Always())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 50; i++ {
		if err := x.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	before := x.LogSize()
	if err := x.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if after := x.LogSize(); after >= before {
		t.Fatalf("Checkpoint did not shrink log: %d -> %d", before, after)
	}
	// Mutations after the checkpoint land on the fresh log and survive.
	if err := x.Insert(1000); err != nil {
		t.Fatal(err)
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}

	y, err := OpenWAL(fsys, "db", "idx", durableOpts(), wal.Always())
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	if y.Len() != 51 {
		t.Fatalf("recovered %d keys, want 51", y.Len())
	}
	if y.Search(1000) < 0 {
		t.Fatal("post-checkpoint insert lost")
	}
	if y.Search(49) < 0 {
		t.Fatal("pre-checkpoint insert lost")
	}
}

func TestDurableShardedCrashLosesOnlyUnsynced(t *testing.T) {
	fsys := failfs.NewMem(3)
	// Timerless group commit with a huge byte bound: nothing is synced
	// until we say so.
	x, err := OpenWAL(fsys, "db", "idx", durableOpts(), wal.GroupBytes(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := x.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	durable := x.SyncedSeq()
	if err := x.Insert(4, 5, 6); err != nil { // acked but not synced
		t.Fatal(err)
	}
	fsys.SetCrashAt(fsys.OpCount()) // crash now
	fsys.Crash()

	y, err := OpenWAL(fsys, "db", "idx", durableOpts(), wal.GroupBytes(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	// The synced prefix must be intact; the unsynced batch may or may
	// not have survived, but never partially: batches are single records.
	if y.LastSeq() < durable {
		t.Fatalf("recovered through seq %d, durable floor was %d", y.LastSeq(), durable)
	}
	for _, k := range []uint32{1, 2, 3} {
		if y.Search(k) < 0 {
			t.Fatalf("synced key %d lost", k)
		}
	}
	has4 := y.Search(4) >= 0
	has6 := y.Search(6) >= 0
	if has4 != has6 {
		t.Fatal("batch {4,5,6} recovered partially")
	}
}

func TestDurableShardedFreshDirectory(t *testing.T) {
	fsys := failfs.NewMem(4)
	x, err := OpenWAL(fsys, "a/b/c", "idx", durableOpts(), wal.None())
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(42); err != nil {
		t.Fatal(err)
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	y, err := OpenWAL(fsys, "a/b/c", "idx", durableOpts(), wal.None())
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	// Close syncs the log even under wal.None.
	if y.Search(42) < 0 {
		t.Fatal("key lost across clean close under wal.None")
	}
}
