module cssidx

go 1.24
