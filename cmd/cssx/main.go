// Command cssx is an index explorer: it generates a data set, builds any of
// the paper's index structures over it, and reports the numbers the paper's
// analysis is about — structure space, levels, simulated cache misses per
// lookup on the paper's machines, and host lookup throughput.
//
// Usage:
//
//	cssx -kind levelcss -n 1000000
//	cssx -kind all -n 5000000 -node 64 -machine ultra
//	cssx -kind hash -n 1000000 -hashdir 262144 -dist skewed
//
// Batch lookup mode probes the built index with keys read from a file (or
// stdin with "-"), one decimal key per line, driving the batched lockstep
// descent in chunks of -batch and reporting per-batch timings:
//
//	cssx -kind levelcss -n 1000000 -probefile probes.txt -batch 512
//	generate-keys | cssx -probefile - -batch 64 -sortbatch
//	cssx -probefile probes.txt -schedule auto   # resolves per batch; rows
//	                                            # show the schedule that ran
//
// With -cache, batch mode runs each probe batch as an mmdb IN-list
// selection through the epoch-aware result cache (internal/qcache) and
// dumps the cache counters at the end — repeated batches in the probe
// file are answered from the cache:
//
//	cssx -kind levelcss -n 1000000 -probefile probes.txt -cache
//
// With -wal, the key set is persisted through a write-ahead-logged table
// (internal/wal) before indexing; rerunning with the same directory
// recovers the keys from snapshot + log replay instead of regenerating:
//
//	cssx -kind levelcss -n 1000000 -wal /tmp/cssx-wal -fsync group
//
// Every mmdb-driving mode (-explain, -cache, the -wal append loop, and
// batch mode) runs under the resource-governance flags: -timeout DUR puts
// the whole run under a deadline, -mem-budget BYTES caps query result
// memory.  The query that trips a limit aborts with a typed error, and a
// governed -explain still prints the partial EXPLAIN ANALYZE tree
// annotated where execution stopped:
//
//	cssx -explain -timeout 200us
//	cssx -explain -mem-budget 4096
//
// Example output column meanings:
//
//	space      bytes the structure needs beyond the sorted key array
//	levels     node levels a lookup traverses (tree methods)
//	L1/L2      simulated misses per lookup on the chosen machine
//	est        modelled seconds per lookup on that machine (§5.1 cost model)
//	host       measured seconds per lookup on this machine
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"cssidx"
	"cssidx/internal/cachesim"
	"cssidx/internal/failfs"
	"cssidx/internal/governor"
	"cssidx/internal/mem"
	"cssidx/internal/mmdb"
	"cssidx/internal/simidx"
	"cssidx/internal/telemetry"
	"cssidx/internal/wal"
	"cssidx/internal/workload"
)

var kinds = map[string]cssidx.Kind{
	"binary":   cssidx.KindBinarySearch,
	"interp":   cssidx.KindInterpolation,
	"bst":      cssidx.KindBST,
	"ttree":    cssidx.KindTTree,
	"bptree":   cssidx.KindBPlusTree,
	"fullcss":  cssidx.KindFullCSS,
	"levelcss": cssidx.KindLevelCSS,
	"hash":     cssidx.KindHash,
}

// kindOrder fixes display order for -kind all.
var kindOrder = []string{"binary", "bst", "interp", "ttree", "bptree", "fullcss", "levelcss", "hash"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cssx", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind    = fs.String("kind", "levelcss", "index kind: "+strings.Join(kindOrder, ", ")+", or all")
		n       = fs.Int("n", 1_000_000, "number of keys")
		node    = fs.Int("node", cssidx.DefaultNodeBytes, "node size in bytes for tree methods")
		hashdir = fs.Int("hashdir", 0, "hash directory size (0 = auto)")
		dist    = fs.String("dist", "uniform", "key distribution: uniform, linear, skewed, dups")
		machine = fs.String("machine", "ultra", "simulated machine: ultra, pc, modern")
		lookups = fs.Int("lookups", 100_000, "lookups to simulate/measure")
		seed    = fs.Int64("seed", 1, "workload seed")

		probefile = fs.String("probefile", "", "batch mode: file of probe keys, one per line (\"-\" = stdin)")
		batchSize = fs.Int("batch", 512, "batch mode: probes per lockstep batch")
		schedule  = fs.String("schedule", "", "batch mode: probe schedule per batch: auto, input, sorted (default input; auto resolves per batch)")
		sortBatch = fs.Bool("sortbatch", false, "batch mode: force the sort-probes-first schedule (forerunner of -schedule sorted)")
		workers   = fs.Int("workers", 1, "batch mode: worker goroutines per batch (0 = GOMAXPROCS; needs an ordered method)")
		useCache  = fs.Bool("cache", false, "batch mode: run each batch as an mmdb IN-list selection through the result cache; dumps cache stats")

		walDir    = fs.String("wal", "", "durable mode: persist the key set through a WAL-backed table in this directory; a rerun recovers it (snapshot + log replay) instead of regenerating")
		fsyncMode = fs.String("fsync", "group", "with -wal: fsync policy: none (clean close only), group (2ms group commit), always (fsync per batch)")

		explain     = fs.Bool("explain", false, "run one query of every shape (point, range, IN, join, aggregate) twice through the mmdb planner and print the EXPLAIN ANALYZE traces")
		metricsAddr = fs.String("metrics", "", "serve /metrics (Prometheus text), /metrics.json and /debug/pprof on this address (e.g. :9090); enables telemetry collection")
		linger      = fs.Duration("linger", 0, "with -metrics: keep the endpoint serving this long after the workload finishes")

		timeout   = fs.Duration("timeout", 0, "abort the run's mmdb work (-explain, -cache, -wal appends, batch loops) after this long with a typed deadline error; 0 = no deadline")
		memBudget = fs.Int64("mem-budget", 0, "per-run byte budget for mmdb query results; the query that exceeds it aborts with a typed budget error (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// The governance context every mmdb path runs under.  Without -timeout
	// or -mem-budget this stays context.Background(), which the governor
	// resolves to its nil zero-cost handle.
	qctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(qctx, *timeout)
		defer cancel()
	}
	if *memBudget > 0 {
		qctx = governor.WithBudget(qctx, *memBudget)
	}
	if *metricsAddr != "" {
		telemetry.Enable()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(stderr, "cssx: metrics listener: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "metrics: serving on http://%s/metrics\n", ln.Addr())
		srv := &http.Server{Handler: telemetry.Default.Mux()}
		go srv.Serve(ln)
		defer srv.Close()
		if *linger > 0 {
			defer time.Sleep(*linger)
		}
	}

	g := workload.New(*seed)
	var keys []uint32
	switch *dist {
	case "uniform":
		keys = g.SortedUniform(*n)
	case "linear":
		keys = g.SortedLinear(*n)
	case "skewed":
		keys = g.SortedSkewed(*n)
	case "dups":
		keys = g.SortedWithDuplicates(*n, 4)
	default:
		fmt.Fprintf(stderr, "cssx: unknown distribution %q\n", *dist)
		return 2
	}
	if *walDir != "" {
		var rc int
		keys, rc = durableKeys(qctx, stdout, stderr, *walDir, *fsyncMode, keys)
		if rc != 0 {
			return rc
		}
	}
	if *explain {
		return runExplain(qctx, stdout, stderr, *kind, keys, *node, *hashdir, *seed)
	}
	if *probefile != "" {
		if *kind == "all" {
			fmt.Fprintln(stderr, "cssx: batch mode needs a single -kind")
			return 2
		}
		if _, ok := kinds[*kind]; !ok {
			fmt.Fprintf(stderr, "cssx: unknown kind %q\n", *kind)
			return 2
		}
		if *useCache {
			if *sortBatch || *schedule != "" || *workers != 1 {
				fmt.Fprintln(stderr, "cssx: -cache drives the mmdb selection path; -schedule/-sortbatch/-workers do not apply")
				return 2
			}
			return runCachedBatchMode(qctx, stdout, stderr, *kind, keys, *node, *hashdir, *probefile, *batchSize)
		}
		return runBatchMode(qctx, stdout, stderr, *kind, keys, *node, *hashdir, *probefile, *batchSize, *schedule, *sortBatch, *workers)
	}

	probes := g.Lookups(keys, *lookups)

	var mach *cachesim.Machine
	switch *machine {
	case "ultra":
		mach = cachesim.UltraSparcII()
	case "pc":
		mach = cachesim.PentiumII()
	case "modern":
		mach = cachesim.ModernServer()
	default:
		fmt.Fprintf(stderr, "cssx: unknown machine %q\n", *machine)
		return 2
	}

	var selected []string
	if *kind == "all" {
		selected = kindOrder
	} else {
		if _, ok := kinds[*kind]; !ok {
			fmt.Fprintf(stderr, "cssx: unknown kind %q\n", *kind)
			return 2
		}
		selected = []string{*kind}
	}

	dir := *hashdir
	if dir == 0 {
		dir = cssidx.DefaultHashDirSize(*n)
	}

	fmt.Fprintf(stdout, "n=%d dist=%s node=%dB lookups=%d machine=%s\n\n", *n, *dist, *node, *lookups, mach.Name)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kind\tspace\tL1 miss/lkp\tL2 miss/lkp\tcmp/lkp\test s/lkp\thost s/lkp")
	for _, name := range selected {
		sim := buildSim(name, keys, *node, dir)
		res := simidx.Run(sim, mach, probes)

		idx := cssidx.New(kinds[name], keys, cssidx.Options{NodeBytes: *node, HashDirSize: dir})
		host := measure(idx.Search, probes)

		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.1f\t%.2e\t%.2e\n",
			idx.Name(), mem.Bytes(int64(sim.SpaceBytes())),
			res.MissesPerLookup(0), res.MissesPerLookup(1),
			float64(res.Cmps)/float64(res.Lookups),
			res.SecondsPerLookup(), host)
	}
	tw.Flush()
	return 0
}

// runBatchMode probes the index with keys from a file (or stdin), driving
// the batched search surface in chunks — fanned across the parallel engine
// when -workers asks for it — and reporting per-batch timings.  Each batch
// row carries the schedule that batch ACTUALLY descended under: with
// -schedule auto the sampled duplicate-density estimate resolves per batch,
// and tagging the timing with the requested setting would misattribute the
// sort cost whenever auto flips between batches.
func runBatchMode(ctx context.Context, stdout, stderr io.Writer, kindName string, keys []uint32, nodeBytes, hashDir int, probefile string, batchSize int, scheduleName string, sortBatch bool, workers int) int {
	probes, err := readProbes(probefile)
	if err != nil {
		fmt.Fprintf(stderr, "cssx: %v\n", err)
		return 2
	}
	if len(probes) == 0 {
		fmt.Fprintln(stderr, "cssx: probe file holds no keys")
		return 2
	}
	if batchSize < 1 {
		fmt.Fprintf(stderr, "cssx: batch size %d must be ≥ 1\n", batchSize)
		return 2
	}
	if sortBatch && scheduleName != "" && scheduleName != "sorted" {
		fmt.Fprintf(stderr, "cssx: -sortbatch forces the sorted schedule; it conflicts with -schedule %s\n", scheduleName)
		return 2
	}
	var requested cssidx.BatchSchedule
	switch scheduleName {
	case "auto":
		requested = cssidx.ScheduleAuto
	case "", "input":
		requested = cssidx.ScheduleInputOrder
		if sortBatch {
			requested = cssidx.ScheduleSorted
		}
	case "sorted":
		requested = cssidx.ScheduleSorted
	default:
		fmt.Fprintf(stderr, "cssx: unknown schedule %q (auto, input, sorted)\n", scheduleName)
		return 2
	}
	idx := cssidx.New(kinds[kindName], keys, cssidx.Options{NodeBytes: nodeBytes, HashDirSize: hashDir})
	parallel := workers != 1
	needSorted := requested != cssidx.ScheduleInputOrder
	var plain cssidx.BatchIndex
	var sorted *cssidx.SortedBatch
	switch {
	case needSorted || parallel:
		ord, ok := idx.(cssidx.OrderedIndex)
		if !ok {
			fmt.Fprintf(stderr, "cssx: -schedule/-sortbatch/-workers need an ordered method, %s has none\n", idx.Name())
			return 2
		}
		b := cssidx.BatchOrderedIndex(cssidx.AsBatchOrdered(ord))
		if parallel {
			b = cssidx.NewParallel(ord, cssidx.ParallelOptions{Workers: workers})
		}
		plain = b
		if needSorted {
			// Sorting stays on the caller; the descent underneath fans out.
			sorted = cssidx.NewSortedBatch(b)
		}
	default:
		plain = cssidx.AsBatch(idx)
	}

	sched := requested.String()
	switch {
	case workers == 0:
		sched += ", GOMAXPROCS workers"
	case parallel:
		sched += fmt.Sprintf(", %d workers", workers)
	}
	fmt.Fprintf(stdout, "%s over n=%d keys: %d probes in batches of %d (%s schedule requested)\n\n",
		idx.Name(), len(keys), len(probes), batchSize, sched)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "batch\tkeys\tschedule\thits\tµs\tMkeys/s")
	out := make([]int32, batchSize)
	hits, total := 0, 0.0
	minB, maxB := 0.0, 0.0
	schedCounts := map[cssidx.BatchSchedule]int{}
	for b, base := 0, 0; base < len(probes); b, base = b+1, base+batchSize {
		if err := ctx.Err(); err != nil {
			tw.Flush()
			fmt.Fprintf(stderr, "cssx: aborted after %d of %d batches: %v\n",
				b, (len(probes)+batchSize-1)/batchSize, err)
			return 1
		}
		end := base + batchSize
		if end > len(probes) {
			end = len(probes)
		}
		chunk := probes[base:end]
		resolved := requested.Resolve(chunk)
		schedCounts[resolved]++
		start := time.Now()
		if resolved == cssidx.ScheduleSorted {
			sorted.SearchBatch(chunk, out[:len(chunk)])
		} else {
			plain.SearchBatch(chunk, out[:len(chunk)])
		}
		el := time.Since(start).Seconds()
		h := 0
		for _, r := range out[:len(chunk)] {
			if r >= 0 {
				h++
			}
		}
		hits += h
		total += el
		if b == 0 || el < minB {
			minB = el
		}
		if el > maxB {
			maxB = el
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%d\t%.1f\t%.2f\n", b, len(chunk), resolved, h, el*1e6, float64(len(chunk))/el/1e6)
	}
	tw.Flush()
	nBatches := (len(probes) + batchSize - 1) / batchSize
	fmt.Fprintf(stdout, "\ntotal: %d probes, %d hits, %.1fµs (%.2f Mkeys/s); per-batch min %.1fµs max %.1fµs over %d batches\n",
		len(probes), hits, total*1e6, float64(len(probes))/total/1e6, minB*1e6, maxB*1e6, nBatches)
	fmt.Fprintf(stdout, "resolved schedules: %d input-order, %d sorted\n",
		schedCounts[cssidx.ScheduleInputOrder], schedCounts[cssidx.ScheduleSorted])
	return 0
}

// runCachedBatchMode drives the mmdb query layer instead of the bare
// index: the keys become a one-column table indexed with the chosen
// method, each probe batch runs as an IN-list selection (Table.SelectIn)
// through the epoch-aware result cache, and the cache counters are dumped
// at the end.  Repeated batches — the common shape of skewed probe files —
// are answered from the cache; the "rows" column counts matching RIDs.
func runCachedBatchMode(ctx context.Context, stdout, stderr io.Writer, kindName string, keys []uint32, nodeBytes, hashDir int, probefile string, batchSize int) int {
	probes, err := readProbes(probefile)
	if err != nil {
		fmt.Fprintf(stderr, "cssx: %v\n", err)
		return 2
	}
	if len(probes) == 0 {
		fmt.Fprintln(stderr, "cssx: probe file holds no keys")
		return 2
	}
	if batchSize < 1 {
		fmt.Fprintf(stderr, "cssx: batch size %d must be ≥ 1\n", batchSize)
		return 2
	}
	tab := mmdb.NewTable("cssx")
	if err := tab.AddColumn("k", keys); err != nil {
		fmt.Fprintf(stderr, "cssx: %v\n", err)
		return 2
	}
	if _, err := tab.BuildIndex("k", kinds[kindName], cssidx.Options{NodeBytes: nodeBytes, HashDirSize: hashDir}); err != nil {
		fmt.Fprintf(stderr, "cssx: %v\n", err)
		return 2
	}
	tab.EnableCache(mmdb.CacheOptions{}).RegisterMetrics(telemetry.Default)

	fmt.Fprintf(stdout, "mmdb IN-list selections over n=%d keys (%s index, result cache on): %d probes in batches of %d\n\n",
		len(keys), kindName, len(probes), batchSize)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "batch\tkeys\trows\tµs\tMkeys/s")
	rows, total := 0, 0.0
	for b, base := 0, 0; base < len(probes); b, base = b+1, base+batchSize {
		end := base + batchSize
		if end > len(probes) {
			end = len(probes)
		}
		chunk := probes[base:end]
		start := time.Now()
		rids, _, err := tab.SelectInCtx(ctx, "k", chunk, nil)
		el := time.Since(start).Seconds()
		if err != nil {
			tw.Flush()
			if governor.IsAbort(err) {
				fmt.Fprintf(stderr, "cssx: aborted after %d of %d batches: %v\n",
					b, (len(probes)+batchSize-1)/batchSize, err)
			} else {
				fmt.Fprintf(stderr, "cssx: %v\n", err)
			}
			return 1
		}
		rows += len(rids)
		total += el
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\t%.2f\n", b, len(chunk), len(rids), el*1e6, float64(len(chunk))/el/1e6)
	}
	tw.Flush()
	// The dump reads the registry — the same read-on-scrape series /metrics
	// exposes — rather than a second private stats path.
	val := func(name string) int64 {
		v, _ := telemetry.Default.Value(name)
		return int64(v)
	}
	hitRate, _ := telemetry.Default.Value("qcache_hit_rate")
	fmt.Fprintf(stdout, "\ntotal: %d probes, %d matching rows, %.1fµs (%.2f Mkeys/s)\n",
		len(probes), rows, total*1e6, float64(len(probes))/total/1e6)
	fmt.Fprintf(stdout, "cache: %d hits (%d contained) / %d misses (%.0f%% hit rate), %d inserts, %d rejects, %d evictions, %d invalidations, %d entries, %d bytes\n",
		val("qcache_hits_total"), val("qcache_contained_hits_total"), val("qcache_misses_total"), 100*hitRate,
		val("qcache_inserts_total"), val("qcache_rejects_total"), val("qcache_evictions_total"),
		val("qcache_invalidations_total"), val("qcache_entries"), val("qcache_bytes"))
	fmt.Fprintf(stdout, "reuse: %d stitched (%d gap probes), %d in-subset, %d in-superset (%d key probes), %d aggregate, %d patched entries\n",
		val("qcache_stitched_hits_total"), val("qcache_gap_probes_total"), val("qcache_subset_hits_total"),
		val("qcache_superset_hits_total"), val("qcache_missing_key_probes_total"),
		val("qcache_agg_hits_total"), val("qcache_patches_total"))
	return 0
}

// durableKeys persists or recovers the key set through a WAL-backed mmdb
// table (internal/wal via mmdb.OpenDurable).  An empty directory gets the
// generated keys appended in logged batches; a populated one hands back the
// keys recovered from snapshot + log replay — rerunning the same command
// after a crash (or plain exit) serves the exact key set the first run
// acknowledged, which is the durability guarantee the README documents.
// Returns the keys to index and a non-zero exit code on failure.  A
// -timeout deadline governs the append loop: a cancelled batch either
// never reached the log or is fully durable, never torn.
func durableKeys(ctx context.Context, stdout, stderr io.Writer, dir, fsyncMode string, generated []uint32) ([]uint32, int) {
	var pol wal.Policy
	switch fsyncMode {
	case "none":
		pol = wal.None()
	case "group":
		pol = wal.GroupCommit(2 * time.Millisecond)
	case "always":
		pol = wal.Always()
	default:
		fmt.Fprintf(stderr, "cssx: unknown fsync policy %q (none, group, always)\n", fsyncMode)
		return nil, 2
	}
	d, err := mmdb.OpenDurable(failfs.OS, dir, "cssx", pol)
	if err != nil {
		fmt.Fprintf(stderr, "cssx: opening durable table: %v\n", err)
		return nil, 1
	}
	keys := generated
	if d.Rows() == 0 {
		start := time.Now()
		const chunk = 4096
		for base := 0; base < len(keys); base += chunk {
			end := min(base+chunk, len(keys))
			if err := d.AppendRowsCtx(ctx, map[string][]uint32{"k": keys[base:end]}); err != nil {
				if governor.IsAbort(err) {
					fmt.Fprintf(stderr, "cssx: aborted logging keys after %d of %d (%d durable): %v\n",
						base, len(keys), d.Rows(), err)
				} else {
					fmt.Fprintf(stderr, "cssx: logging keys: %v\n", err)
				}
				return nil, 1
			}
		}
		if err := d.SyncWAL(); err != nil {
			fmt.Fprintf(stderr, "cssx: syncing wal: %v\n", err)
			return nil, 1
		}
		fmt.Fprintf(stdout, "wal: logged %d keys to %s (%s fsync, %d log bytes, seq %d) in %.1fms\n\n",
			len(keys), dir, fsyncMode, d.LogSize(), d.LastSeq(), time.Since(start).Seconds()*1e3)
	} else {
		// Recovered rows win over the regenerated set: they are what the
		// first run acknowledged.  Appends preserved order, so the column
		// is still the sorted array the index builders need.
		col, _ := d.Column("k")
		keys = make([]uint32, d.Rows())
		for i := range keys {
			keys[i] = col.Value(i)
		}
		fmt.Fprintf(stdout, "wal: recovered %d keys from %s (snapshot + %d log bytes, seq %d)\n\n",
			len(keys), dir, d.LogSize(), d.LastSeq())
	}
	if err := d.Close(); err != nil {
		fmt.Fprintf(stderr, "cssx: closing durable table: %v\n", err)
		return nil, 1
	}
	return keys, 0
}

// readProbes parses one decimal uint32 key per line; "-" reads stdin.
func readProbes(path string) ([]uint32, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var probes []uint32
	sc := bufio.NewScanner(r)
	for line := 1; sc.Scan(); line++ {
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("probe file line %d: %q is not a uint32 key", line, s)
		}
		probes = append(probes, uint32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return probes, nil
}

// buildSim constructs the simulated index for a kind name.
func buildSim(name string, keys []uint32, nodeBytes, hashDir int) simidx.Sim {
	alloc := cachesim.NewAddrAlloc()
	slots := nodeBytes / 4
	switch name {
	case "binary":
		return simidx.NewBinarySearch(keys, alloc)
	case "interp":
		return simidx.NewInterpolationSearch(keys, alloc)
	case "bst":
		return simidx.NewBST(keys, alloc)
	case "ttree":
		cap := (nodeBytes - 8) / 8
		if cap < 2 {
			cap = 2
		}
		return simidx.NewTTree(keys, cap, alloc)
	case "bptree":
		if slots%2 == 1 {
			slots++
		}
		return simidx.NewBPlusTree(keys, slots, alloc)
	case "fullcss":
		return simidx.NewFullCSS(keys, slots, alloc)
	case "levelcss":
		return simidx.NewLevelCSS(keys, mem.NextPow2(slots), alloc)
	case "hash":
		return simidx.NewHash(keys, hashDir, mem.CacheLine, alloc)
	default:
		panic("unreachable")
	}
}

var sink int

// measure returns host seconds per lookup (single pass; cssbench does the
// full min-of-N protocol).
func measure(search func(uint32) int, probes []uint32) float64 {
	if len(probes) == 0 {
		return 0
	}
	start := nowSeconds()
	s := 0
	for _, k := range probes {
		s += search(k)
	}
	sink += s
	return (nowSeconds() - start) / float64(len(probes))
}

// nowSeconds is time.Now in seconds, isolated for readability above.
func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }
