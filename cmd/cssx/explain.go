package main

// EXPLAIN ANALYZE mode (-explain): builds a small demo database over the
// generated key set, runs one query of every shape the planner knows —
// point, range, IN-list, join, grouped aggregate — twice each, and prints
// the per-query trace trees.  The first run of each query misses the
// result cache and shows the chosen access path; the second shows the
// cache serving it, so a single invocation demonstrates the whole
// plan → cache → execute → admit life cycle.
//
// The queries run under the -timeout / -mem-budget governance context.
// A governed abort is not a dead end: the partial trace is printed
// anyway, with the span where execution stopped carrying an "aborted"
// annotation, so EXPLAIN ANALYZE doubles as the post-mortem for why a
// query was cut off.

import (
	"context"
	"fmt"
	"io"

	"cssidx"
	"cssidx/internal/governor"
	"cssidx/internal/mmdb"
	"cssidx/internal/telemetry"
	"cssidx/internal/workload"
)

// runExplain builds the demo tables and prints cold and warm traces for
// each query shape.  Returns the process exit code: 0 clean, 1 if any
// query was aborted by the governance context or failed outright.
func runExplain(ctx context.Context, stdout, stderr io.Writer, kindName string, keys []uint32, nodeBytes, hashDir int, seed int64) int {
	if _, ok := kinds[kindName]; !ok || kindName == "hash" {
		fmt.Fprintf(stderr, "cssx: -explain needs an ordered -kind (got %q)\n", kindName)
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "cssx: %v\n", err)
		return 1
	}
	tab := mmdb.NewTable("keys")
	if err := tab.AddColumn("k", keys); err != nil {
		return fail(err)
	}
	groups := make([]uint32, len(keys))
	for i, k := range keys {
		groups[i] = k % 8
	}
	if err := tab.AddColumn("g", groups); err != nil {
		return fail(err)
	}
	ix, err := tab.BuildIndex("k", kinds[kindName], cssidx.Options{NodeBytes: nodeBytes, HashDirSize: hashDir})
	if err != nil {
		return fail(err)
	}
	// Register the demo table's cache with the default registry so a
	// -metrics scrape of an -explain run exports the qcache series too.
	tab.EnableCache(mmdb.CacheOptions{MinCostNs: -1}).RegisterMetrics(telemetry.Default)

	g := workload.New(seed)
	outer := mmdb.NewTable("probes")
	if err := outer.AddColumn("k", g.Lookups(keys, 1024)); err != nil {
		return fail(err)
	}
	outer.EnableCache(mmdb.CacheOptions{MinCostNs: -1})

	aborts := 0
	show := func(title string, q func(tr *telemetry.Trace) error) int {
		for _, leg := range []string{"cold", "warm"} {
			tr := telemetry.NewTrace(title)
			if err := q(tr); err != nil {
				if !governor.IsAbort(err) {
					return fail(err)
				}
				// Aborted, not broken: print the partial tree — its
				// "aborted" span annotation marks where execution
				// stopped — and move on to the next query shape.
				aborts++
				fmt.Fprintf(stdout, "-- %s (%s) ABORTED: %v\n%s\n", title, leg, err, tr)
				continue
			}
			fmt.Fprintf(stdout, "-- %s (%s)\n%s\n", title, leg, tr)
		}
		return 0
	}

	point := keys[len(keys)/2]
	lo, hi := keys[len(keys)*31/64], keys[len(keys)*33/64]
	inVals := g.Lookups(keys, 8)

	fmt.Fprintf(stdout, "EXPLAIN ANALYZE over n=%d keys (%s index, result cache on)\n\n", len(keys), kindName)
	if rc := show(fmt.Sprintf("SelectRange k = %d", point), func(tr *telemetry.Trace) error {
		_, _, err := tab.SelectRangeCtx(ctx, "k", point, point, tr)
		return err
	}); rc != 0 {
		return rc
	}
	if rc := show(fmt.Sprintf("SelectRange k in [%d, %d]", lo, hi), func(tr *telemetry.Trace) error {
		_, _, err := tab.SelectRangeCtx(ctx, "k", lo, hi, tr)
		return err
	}); rc != 0 {
		return rc
	}
	if rc := show(fmt.Sprintf("SelectIn k (%d values)", len(inVals)), func(tr *telemetry.Trace) error {
		_, _, err := tab.SelectInCtx(ctx, "k", inVals, tr)
		return err
	}); rc != 0 {
		return rc
	}
	if rc := show("JoinWith probes.k = keys.k", func(tr *telemetry.Trace) error {
		_, err := mmdb.JoinWithCtx(ctx, outer, "k", ix, mmdb.JoinOptions{}, func(o, i uint32) {}, tr)
		return err
	}); rc != 0 {
		return rc
	}
	if rc := show("GroupAggregate by g over k", func(tr *telemetry.Trace) error {
		_, err := mmdb.GroupAggregateCtx(ctx, tab, "g", "k", nil, tr)
		return err
	}); rc != 0 {
		return rc
	}
	if aborts > 0 {
		fmt.Fprintf(stderr, "cssx: %d query leg(s) aborted by the governance context; partial traces above\n", aborts)
		return 1
	}
	return 0
}
