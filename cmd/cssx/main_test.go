package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestExploreSingleKind(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-kind", "levelcss", "-n", "5000", "-lookups", "500"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "level CSS-tree") {
		t.Errorf("output missing method name:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "L2 miss/lkp") {
		t.Error("header missing")
	}
}

func TestExploreAllKinds(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-kind", "all", "-n", "3000", "-lookups", "300", "-machine", "pc"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	for _, want := range []string{"array binary search", "T-tree", "B+-tree", "full CSS-tree", "hash", "Pentium"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestExploreDistributions(t *testing.T) {
	for _, dist := range []string{"uniform", "linear", "skewed", "dups"} {
		var out, errb bytes.Buffer
		code := run([]string{"-kind", "binary", "-n", "2000", "-lookups", "200", "-dist", dist}, &out, &errb)
		if code != 0 {
			t.Fatalf("dist=%s: exit=%d stderr=%s", dist, code, errb.String())
		}
	}
}

func TestExploreBadInputs(t *testing.T) {
	cases := [][]string{
		{"-kind", "btree"},
		{"-dist", "bimodal"},
		{"-machine", "cray"},
		{"-badflag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit=%d, want 2", args, code)
		}
	}
}

func TestExploreHashDirOverride(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-kind", "hash", "-n", "5000", "-lookups", "200", "-hashdir", "64"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
}
