package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cssidx/internal/telemetry"
	"cssidx/internal/workload"
)

func TestExploreSingleKind(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-kind", "levelcss", "-n", "5000", "-lookups", "500"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "level CSS-tree") {
		t.Errorf("output missing method name:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "L2 miss/lkp") {
		t.Error("header missing")
	}
}

func TestExploreAllKinds(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-kind", "all", "-n", "3000", "-lookups", "300", "-machine", "pc"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	for _, want := range []string{"array binary search", "T-tree", "B+-tree", "full CSS-tree", "hash", "Pentium"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestExploreDistributions(t *testing.T) {
	for _, dist := range []string{"uniform", "linear", "skewed", "dups"} {
		var out, errb bytes.Buffer
		code := run([]string{"-kind", "binary", "-n", "2000", "-lookups", "200", "-dist", dist}, &out, &errb)
		if code != 0 {
			t.Fatalf("dist=%s: exit=%d stderr=%s", dist, code, errb.String())
		}
	}
}

func TestExploreBadInputs(t *testing.T) {
	cases := [][]string{
		{"-kind", "btree"},
		{"-dist", "bimodal"},
		{"-machine", "cray"},
		{"-badflag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit=%d, want 2", args, code)
		}
	}
}

// writeProbeFile writes a probe file with hits and misses for the seed-1
// uniform key set run generates, returning its path and the hit count.
func writeProbeFile(t *testing.T, n, q int) (path string, hits int) {
	t.Helper()
	g := workload.New(1)
	keys := g.SortedUniform(n) // same keys run() builds for -n with -seed 1
	probes := append(g.Lookups(keys, q), g.Misses(keys, q/2)...)
	hits = q
	var b strings.Builder
	for i, p := range probes {
		fmt.Fprintf(&b, "%d\n", p)
		if i == 0 {
			b.WriteString("\n") // blank lines are skipped
		}
	}
	path = filepath.Join(t.TempDir(), "probes.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, hits
}

func TestBatchModeFile(t *testing.T) {
	path, hits := writeProbeFile(t, 4000, 600)
	for _, extra := range [][]string{nil, {"-sortbatch"}, {"-kind", "hash"}, {"-workers", "4"}, {"-workers", "0"}, {"-sortbatch", "-workers", "3"}} {
		args := append([]string{"-kind", "levelcss", "-n", "4000", "-probefile", path, "-batch", "128"}, extra...)
		if len(extra) == 2 { // kind override replaces the leading pair
			args = append([]string{"-n", "4000", "-probefile", path, "-batch", "128"}, extra...)
		}
		var out, errb bytes.Buffer
		code := run(args, &out, &errb)
		if code != 0 {
			t.Fatalf("args %v: exit=%d stderr=%s", args, code, errb.String())
		}
		s := out.String()
		if !strings.Contains(s, fmt.Sprintf("%d hits", hits)) {
			t.Errorf("args %v: expected %d hits in summary:\n%s", args, hits, s)
		}
		if !strings.Contains(s, "Mkeys/s") || !strings.Contains(s, "per-batch min") {
			t.Errorf("args %v: missing per-batch timing report:\n%s", args, s)
		}
	}
}

func TestBatchModeCached(t *testing.T) {
	path, _ := writeProbeFile(t, 4000, 600)
	var out, errb bytes.Buffer
	code := run([]string{"-kind", "levelcss", "-n", "4000", "-probefile", path, "-batch", "128", "-cache"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "result cache on") || !strings.Contains(s, "cache: ") {
		t.Errorf("missing cache stats dump:\n%s", s)
	}
	if !strings.Contains(s, "matching rows") {
		t.Errorf("missing summary:\n%s", s)
	}
	// The same probe file twice over one process sees repeated batches
	// only when the file itself repeats, so just require the cache to
	// have recorded activity.
	if !strings.Contains(s, "inserts") {
		t.Errorf("missing cache counters:\n%s", s)
	}
}

func TestBatchModeBadInputs(t *testing.T) {
	path, _ := writeProbeFile(t, 1000, 50)
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("12\nnope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-kind", "all", "-probefile", path},                      // batch mode needs one kind
		{"-kind", "btree", "-probefile", path},                    // unknown kind
		{"-kind", "hash", "-probefile", path, "-sortbatch"},       // hash has no ordered schedule
		{"-kind", "hash", "-probefile", path, "-workers", "4"},    // hash has no parallel batch either
		{"-probefile", bad},                                       // malformed key
		{"-probefile", empty},                                     // no keys
		{"-probefile", filepath.Join(t.TempDir(), "missing.txt")}, // unreadable
		{"-probefile", path, "-batch", "0"},                       // bad batch size
		{"-probefile", path, "-cache", "-sortbatch"},              // cache mode owns the schedule
		{"-probefile", path, "-cache", "-workers", "4"},           // ...and the worker count
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(append([]string{"-n", "1000"}, args...), &out, &errb); code != 2 {
			t.Errorf("args %v: exit=%d, want 2 (stderr=%s)", args, code, errb.String())
		}
	}
}

func TestExploreHashDirOverride(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-kind", "hash", "-n", "5000", "-lookups", "200", "-hashdir", "64"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
}

// TestBatchModeResolvedSchedule pins the -schedule fix: timings must be
// tagged with the schedule each batch actually descended under, and the
// summary counts the resolution outcomes.
func TestBatchModeResolvedSchedule(t *testing.T) {
	// Heavily duplicated probes: auto resolves every large batch to sorted.
	g := workload.New(1)
	keys := g.SortedUniform(4000)
	var b strings.Builder
	for i := 0; i < 2048; i++ {
		fmt.Fprintf(&b, "%d\n", keys[i%7])
	}
	dupPath := filepath.Join(t.TempDir(), "dups.txt")
	if err := os.WriteFile(dupPath, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-kind", "levelcss", "-n", "4000", "-probefile", dupPath, "-batch", "512", "-schedule", "auto"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "auto schedule requested") {
		t.Errorf("missing requested schedule in header:\n%s", s)
	}
	if !strings.Contains(s, "sorted") {
		t.Errorf("duplicate-saturated batches should resolve to sorted:\n%s", s)
	}
	if !strings.Contains(s, "resolved schedules: 0 input-order, 4 sorted") {
		t.Errorf("missing/incorrect resolution summary:\n%s", s)
	}

	// Distinct uniform probes: auto resolves to input-order.
	probePath, _ := writeProbeFile(t, 4000, 600)
	out.Reset()
	errb.Reset()
	code = run([]string{"-kind", "levelcss", "-n", "4000", "-probefile", probePath, "-batch", "512", "-schedule", "auto"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	if s := out.String(); !strings.Contains(s, "0 sorted") {
		t.Errorf("uniform distinct batches should resolve to input-order:\n%s", s)
	}

	// Explicit schedules and the -sortbatch forerunner still work.
	for _, extra := range [][]string{{"-schedule", "sorted"}, {"-schedule", "input"}, {"-schedule", "sorted", "-workers", "2"}} {
		out.Reset()
		errb.Reset()
		args := append([]string{"-kind", "levelcss", "-n", "4000", "-probefile", probePath, "-batch", "128"}, extra...)
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("args %v: exit=%d stderr=%s", extra, code, errb.String())
		}
	}
	// Unknown schedule errors.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-kind", "levelcss", "-n", "4000", "-probefile", probePath, "-schedule", "wat"}, &out, &errb); code != 2 {
		t.Fatalf("unknown schedule: exit=%d, want 2", code)
	}
}

// TestBatchModeScheduleConflict pins the -sortbatch/-schedule conflict error.
func TestBatchModeScheduleConflict(t *testing.T) {
	path, _ := writeProbeFile(t, 1000, 50)
	var out, errb bytes.Buffer
	if code := run([]string{"-kind", "levelcss", "-n", "1000", "-probefile", path, "-schedule", "auto", "-sortbatch"}, &out, &errb); code != 2 {
		t.Fatalf("conflicting flags: exit=%d, want 2", code)
	}
	// -sortbatch with the matching explicit schedule is fine.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-kind", "levelcss", "-n", "1000", "-probefile", path, "-schedule", "sorted", "-sortbatch"}, &out, &errb); code != 0 {
		t.Fatalf("agreeing flags: exit=%d stderr=%s", code, errb.String())
	}
}

func TestWALModeLogsThenRecovers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	var out, errb bytes.Buffer
	code := run([]string{"-kind", "levelcss", "-n", "5000", "-lookups", "200", "-wal", dir, "-fsync", "always"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wal: logged 5000 keys") {
		t.Errorf("first run did not log:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	code = run([]string{"-kind", "levelcss", "-n", "5000", "-lookups", "200", "-wal", dir}, &out, &errb)
	if code != 0 {
		t.Fatalf("rerun exit=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wal: recovered 5000 keys") {
		t.Errorf("rerun did not recover:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "level CSS-tree") {
		t.Errorf("rerun did not index the recovered keys:\n%s", out.String())
	}
}

func TestWALModeBadPolicy(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-wal", t.TempDir(), "-fsync", "sometimes", "-n", "100"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit=%d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown fsync policy") {
		t.Errorf("stderr = %s", errb.String())
	}
}

func TestExplainMode(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-explain", "-n", "50000"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"EXPLAIN ANALYZE",
		"plan",
		"outcome=miss",
		"outcome=hit",
		"path=sorted-index",
		"path=indexed-nested-loop",
		"path=domain-array",
		"JoinWith probes.k = keys.k",
		"GroupAggregate by g over k",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("explain output missing %q:\n%s", want, s)
		}
	}
}

func TestExplainNeedsOrderedKind(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-explain", "-kind", "hash", "-n", "1000"}, &out, &errb); code != 2 {
		t.Fatalf("exit=%d, want 2; stderr=%s", code, errb.String())
	}
}

// TestGovernedExplainBudgetAbort pins the -mem-budget satellite: a budget
// small enough for the point query but not the range scan aborts the run
// with a typed error AND still renders the partial EXPLAIN ANALYZE tree,
// annotated at the span where execution stopped.
func TestGovernedExplainBudgetAbort(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-explain", "-n", "20000", "-mem-budget", "2048"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit=%d, want 1; stderr=%s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "outcome=hit") {
		t.Errorf("point query should fit the budget and hit the cache warm:\n%s", s)
	}
	if !strings.Contains(s, "ABORTED: governor: memory budget exceeded") {
		t.Errorf("missing typed abort banner:\n%s", s)
	}
	if !strings.Contains(s, "aborted=governor: memory budget exceeded") {
		t.Errorf("partial trace missing the aborted span annotation:\n%s", s)
	}
	if !strings.Contains(errb.String(), "aborted by the governance context") {
		t.Errorf("stderr missing abort summary: %s", errb.String())
	}
}

// TestGovernedExplainDeadline: an already-hopeless -timeout aborts every
// query leg with the deadline error, partial traces still print.
func TestGovernedExplainDeadline(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-explain", "-n", "20000", "-timeout", "1ns"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit=%d, want 1; stderr=%s", code, errb.String())
	}
	if s := out.String(); !strings.Contains(s, "aborted=context deadline exceeded") {
		t.Errorf("partial traces missing deadline annotation:\n%s", s)
	}
	if !strings.Contains(errb.String(), "10 query leg(s) aborted") {
		t.Errorf("stderr = %s", errb.String())
	}
}

// TestGovernedExplainClean: generous limits change nothing — the governed
// run exits 0 with the same trace shapes as an ungoverned one.
func TestGovernedExplainClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-explain", "-n", "20000", "-timeout", "1m", "-mem-budget", "268435456"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"outcome=miss", "outcome=hit", "GroupAggregate by g over k"} {
		if !strings.Contains(s, want) {
			t.Errorf("governed clean run missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "ABORTED") {
		t.Errorf("generous limits aborted something:\n%s", s)
	}
}

// TestGovernedBatchModesTimeout: both batch loops honor the deadline with
// a typed abort message instead of running to completion.
func TestGovernedBatchModesTimeout(t *testing.T) {
	path, _ := writeProbeFile(t, 4000, 600)
	for _, extra := range [][]string{{"-cache"}, nil} {
		var out, errb bytes.Buffer
		args := append([]string{"-kind", "levelcss", "-n", "4000", "-probefile", path, "-batch", "64", "-timeout", "1ns"}, extra...)
		code := run(args, &out, &errb)
		if code != 1 {
			t.Fatalf("args %v: exit=%d, want 1; stderr=%s", args, code, errb.String())
		}
		es := errb.String()
		if !strings.Contains(es, "aborted after") || !strings.Contains(es, "context deadline exceeded") {
			t.Errorf("args %v: stderr = %s", args, es)
		}
	}
}

// TestGovernedWALTimeout: the durable append loop honors the deadline and
// reports how far the log got before the abort.
func TestGovernedWALTimeout(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	var out, errb bytes.Buffer
	code := run([]string{"-kind", "levelcss", "-n", "5000", "-wal", dir, "-timeout", "1ns"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit=%d, want 1; stderr=%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "aborted logging keys") {
		t.Errorf("stderr = %s", errb.String())
	}
}

// TestMetricsScrape drives a cached workload with collection enabled and
// scrapes the registry through the same mux -metrics serves: the body
// must parse as Prometheus text and carry the core engine series.
func TestMetricsScrape(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	path, _ := writeProbeFile(t, 4000, 600)
	var out, errb bytes.Buffer
	if code := run([]string{"-kind", "levelcss", "-n", "4000", "-probefile", path, "-batch", "128", "-cache"}, &out, &errb); code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	srv := httptest.NewServer(telemetry.Default.Mux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidatePrometheus(body); err != nil {
		t.Fatalf("scrape does not parse: %v\nbody:\n%s", err, body)
	}
	for _, series := range []string{"qcache_hits_total", "mmdb_query_ns", "mmdb_plan_total"} {
		if !strings.Contains(string(body), series) {
			t.Errorf("scrape missing series %s", series)
		}
	}
}
