package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListShowsAllExperiments(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	for _, id := range []string{"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "skew", "shard"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestNoArgsPrintsHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit=%d", code)
	}
	if !strings.Contains(out.String(), "-run") {
		t.Error("help hint missing")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-run", "table1", "-quick", "-lookups", "100", "-repeats", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "cache line") {
		t.Errorf("table1 output missing:\n%s", out.String())
	}
}

func TestRunMultipleAndAlias(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-run", "fig5, fig2", "-quick", "-lookups", "100", "-repeats", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "comparison ratio") {
		t.Error("fig5 output missing")
	}
	if !strings.Contains(out.String(), "stepped frontier") {
		t.Error("fig2→fig14 alias output missing")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "fig99"}, &out, &errb); code != 2 {
		t.Fatalf("exit=%d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Error("error message missing")
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("exit=%d, want 2", code)
	}
}

// benchDoc mirrors the -json document shape.
type benchDoc struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Records    []struct {
		Experiment string         `json:"experiment"`
		Params     map[string]any `json:"params"`
		Metric     string         `json:"metric"`
		Value      float64        `json:"value"`
		Unit       string         `json:"unit"`
	} `json:"records"`
}

func TestJSONToStdoutSuppressesTables(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-run", "parallel", "-quick", "-lookups", "2000", "-repeats", "1", "-json", "-"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	var doc benchDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("stdout is not one JSON document: %v\n%s", err, out.String())
	}
	if doc.GoVersion == "" || doc.GOMAXPROCS < 1 {
		t.Errorf("environment context missing: %+v", doc)
	}
	if len(doc.Records) == 0 {
		t.Fatal("no records emitted")
	}
	surfaces := map[string]bool{}
	for _, r := range doc.Records {
		if r.Experiment != "parallel" || r.Metric != "throughput" || r.Value <= 0 {
			t.Fatalf("bad record: %+v", r)
		}
		if s, ok := r.Params["surface"].(string); ok {
			surfaces[s] = true
		}
	}
	for _, want := range []string{"LowerBoundBatch", "sharded", "node-search-scalar", "node-search-branch-free"} {
		if !surfaces[want] {
			t.Errorf("no records for surface %q", want)
		}
	}
}

func TestJSONToFileKeepsTables(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errb bytes.Buffer
	code := run([]string{"-run", "parallel", "-quick", "-lookups", "2000", "-repeats", "1", "-json", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "parallel batch engine") {
		t.Error("table output suppressed with -json FILE")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("file is not JSON: %v", err)
	}
	if len(doc.Records) == 0 {
		t.Error("file holds no records")
	}
}
