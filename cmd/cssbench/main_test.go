package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListShowsAllExperiments(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	for _, id := range []string{"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "skew", "shard"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestNoArgsPrintsHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit=%d", code)
	}
	if !strings.Contains(out.String(), "-run") {
		t.Error("help hint missing")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-run", "table1", "-quick", "-lookups", "100", "-repeats", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "cache line") {
		t.Errorf("table1 output missing:\n%s", out.String())
	}
}

func TestRunMultipleAndAlias(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-run", "fig5, fig2", "-quick", "-lookups", "100", "-repeats", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "comparison ratio") {
		t.Error("fig5 output missing")
	}
	if !strings.Contains(out.String(), "stepped frontier") {
		t.Error("fig2→fig14 alias output missing")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "fig99"}, &out, &errb); code != 2 {
		t.Fatalf("exit=%d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Error("error message missing")
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("exit=%d, want 2", code)
	}
}
