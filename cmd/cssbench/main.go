// Command cssbench regenerates the tables and figures of "Cache Conscious
// Indexing for Decision-Support in Main Memory" (Rao & Ross, 1998/99).
//
// Usage:
//
//	cssbench -list
//	cssbench -run fig10
//	cssbench -run table1,fig7,fig14 -quick
//	cssbench -run all -lookups 100000 -seed 7
//
// Simulated experiments (fig10–fig13) replay each algorithm's memory
// accesses against the paper's exact Ultra Sparc II / Pentium II cache
// configurations; wall-clock sections time the real implementations on this
// machine.  Absolute numbers differ from the paper's 1998 hardware — the
// shapes (who wins, by what factor, where the crossovers fall) are the
// reproduction target, as recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cssidx/internal/bench"
	"cssidx/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cssbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs   = fs.String("run", "", "comma-separated experiment ids, or 'all'")
		list     = fs.Bool("list", false, "list experiments and exit")
		quick    = fs.Bool("quick", false, "shrink data sizes for a fast pass")
		lookups  = fs.Int("lookups", 100000, "lookups per measurement (paper: 100000)")
		seed     = fs.Int64("seed", 1, "workload seed")
		repeats  = fs.Int("repeats", 3, "wall-clock repetitions, minimum reported (paper: 5)")
		jsonPath = fs.String("json", "", "write machine-readable records to this file (\"-\" = stdout, suppressing tables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list || *runIDs == "" {
		fmt.Fprintln(stdout, "experiments:")
		for _, e := range bench.Experiments() {
			fmt.Fprintf(stdout, "  %-8s %s\n", e.ID, e.Title)
		}
		if *runIDs == "" && !*list {
			fmt.Fprintln(stdout, "\nrun with -run <id>[,<id>…] or -run all")
		}
		return 0
	}

	cfg := bench.Config{
		Seed:    *seed,
		Lookups: *lookups,
		Quick:   *quick,
		Repeats: *repeats,
	}
	tableOut := stdout
	if *jsonPath != "" {
		cfg.Recorder = &bench.Recorder{}
		if *jsonPath == "-" {
			tableOut = io.Discard // JSON owns stdout
		}
	}

	var ids []string
	if *runIDs == "all" {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*runIDs, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(stderr, "cssbench: unknown experiment %q (use -list)\n", id)
			return 2
		}
		fmt.Fprintf(tableOut, "=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(cfg, tableOut); err != nil {
			fmt.Fprintf(stderr, "cssbench: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprintln(tableOut)
	}
	if cfg.Recorder != nil {
		// Whatever the experiments left in the global registry rides along
		// as run context — counter totals and histogram summaries.
		cfg.Recorder.SetContext("telemetry", telemetry.Default.Summary())
		if *jsonPath == "-" {
			if err := cfg.Recorder.WriteJSON(stdout); err != nil {
				fmt.Fprintf(stderr, "cssbench: writing json: %v\n", err)
				return 1
			}
			return 0
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(stderr, "cssbench: %v\n", err)
			return 1
		}
		werr := cfg.Recorder.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr // surface write-back errors reported at close
		}
		if werr != nil {
			fmt.Fprintf(stderr, "cssbench: writing json: %v\n", werr)
			return 1
		}
	}
	return 0
}
