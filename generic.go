// Generic CSS-trees: the §4.1 generalisation — "our techniques apply to
// sorted arrays having elements of size different from the size of a key;
// offsets into the leaf array are independent of the record size within the
// array".
//
// Two forms are provided:
//
//   - Generic[K]: a CSS-tree over a sorted []K for any ordered key type
//     (ints of any width, floats, strings);
//   - RecordTree[K]: a CSS-tree over *records* of arbitrary type accessed
//     through a key extractor, so a table clustered by an attribute can be
//     indexed in place without materialising a key array.
//
// The uint32 fast path (NewFullCSS/NewLevelCSS) remains the tuned,
// paper-exact implementation; these generic forms trade the hard-coded node
// search for type generality.
package cssidx

import (
	"cmp"
	"fmt"

	"cssidx/internal/csstree"
)

// Generic is a CSS-tree (full or level variant) over a sorted slice of any
// ordered key type.  Build with NewGenericFull or NewGenericLevel.
type Generic[K cmp.Ordered] struct {
	keys    []K
	dir     []K
	g       csstree.Geometry
	routing int // routing keys per node: m (full) or m−1 (level)

	// When K's width permits — K is uint32 — the same slices re-typed,
	// cached once at build time: the batch descents then run through the
	// dispatched node-search kernels of internal/binsearch (SIMD/SWAR/
	// scalar) instead of the generic comparison loop, without paying an
	// interface conversion per call.
	keysU32 []uint32
	dirU32  []uint32
}

// NewGenericFull builds a full CSS-tree over the sorted keys with m keys
// per node.  Choose m so that m·sizeof(K) matches the cache line (e.g. m=8
// for 8-byte keys on 64-byte lines).  keys is retained, not copied.
func NewGenericFull[K cmp.Ordered](keys []K, m int) *Generic[K] {
	g := csstree.FullGeometry(len(keys), m)
	return buildGeneric(keys, g, m)
}

// NewGenericLevel builds a level CSS-tree over the sorted keys with m slots
// per node (m−1 routing keys); m must be a power of two ≥ 2.
func NewGenericLevel[K cmp.Ordered](keys []K, m int) *Generic[K] {
	if m&(m-1) != 0 || m < 2 {
		panic(fmt.Sprintf("cssidx: level tree node size m=%d is not a power of two", m))
	}
	g := csstree.LevelGeometry(len(keys), m)
	return buildGeneric(keys, g, m-1)
}

// buildGeneric populates the directory by chasing rightmost children to the
// virtual leaves, exactly like Algorithm 4.1 (aux-slot shortcuts are a
// uint32-path optimisation only).
func buildGeneric[K cmp.Ordered](keys []K, g csstree.Geometry, routing int) *Generic[K] {
	t := &Generic[K]{keys: keys, g: g, routing: routing}
	if g.Internal == 0 {
		t.cacheU32()
		return t
	}
	t.dir = make([]K, g.DirectoryKeys())
	m, fan := g.M, g.Fanout
	for d := 0; d <= g.LNode; d++ {
		base := d * m
		for j := 0; j < routing; j++ {
			c := d*fan + 1 + j
			for c <= g.LNode {
				c = c*fan + fan
			}
			t.dir[base+j] = keys[g.LeafMaxIndex(c)]
		}
	}
	t.cacheU32()
	return t
}

// cacheU32 records the uint32 views of the key and directory arrays when K
// is uint32, unlocking the dispatched node-search kernels for batches.
func (t *Generic[K]) cacheU32() {
	if ku, ok := any(t.keys).([]uint32); ok {
		t.keysU32 = ku
		t.dirU32, _ = any(t.dir).([]uint32)
	}
}

// Search returns the index of the leftmost occurrence of key, or -1.
func (t *Generic[K]) Search(key K) int {
	i := t.LowerBound(key)
	if i < len(t.keys) && t.keys[i] == key {
		return i
	}
	return -1
}

// LowerBound returns the smallest index i with keys[i] >= key, or len(keys).
func (t *Generic[K]) LowerBound(key K) int {
	g := &t.g
	if g.Internal == 0 {
		return lowerBoundG(t.keys, key)
	}
	m := g.M
	d := 0
	for d <= g.LNode {
		base := d * m
		j := lowerBoundG(t.dir[base:base+t.routing], key)
		d = d*g.Fanout + 1 + j
	}
	lo, hi := g.LeafRange(d)
	return lo + lowerBoundG(t.keys[lo:hi], key)
}

// EqualRange returns the half-open index range [first,last) equal to key.
func (t *Generic[K]) EqualRange(key K) (first, last int) {
	first = t.LowerBound(key)
	last = first
	for last < len(t.keys) && t.keys[last] == key {
		last++
	}
	return first, last
}

// Levels returns the node levels traversed per lookup, leaf included.
func (t *Generic[K]) Levels() int { return t.g.Levels() }

// DirectoryLen returns the number of key slots in the directory.
func (t *Generic[K]) DirectoryLen() int { return len(t.dir) }

// lowerBoundG is the leftmost-≥ search over a small sorted slice, with the
// same shift-halving and sequential tail as the specialised path.
func lowerBoundG[K cmp.Ordered](a []K, key K) int {
	lo, hi := 0, len(a)
	for hi-lo > 5 {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo < hi && a[lo] < key {
		lo++
	}
	return lo
}

// RecordTree is a full CSS-tree over a sorted record array accessed through
// a key extractor — §4.1's "a could alternatively contain records of a
// table or packed domain clustered by column k".  Only the directory stores
// keys; leaves read through the extractor, so records of any size are
// indexed in place.
type RecordTree[K cmp.Ordered] struct {
	keyAt func(int) K
	n     int
	dir   []K
	g     csstree.Geometry
}

// NewRecordTree builds a full CSS-tree over n records whose i-th key is
// keyAt(i); records must be sorted by key (duplicates allowed).  m is the
// directory node size in keys.
func NewRecordTree[K cmp.Ordered](n int, keyAt func(int) K, m int) *RecordTree[K] {
	g := csstree.FullGeometry(n, m)
	t := &RecordTree[K]{keyAt: keyAt, n: n, g: g}
	if g.Internal == 0 {
		return t
	}
	t.dir = make([]K, g.DirectoryKeys())
	fan := g.Fanout
	for i := range t.dir {
		d, j := i/m, i%m
		c := d*fan + 1 + j
		for c <= g.LNode {
			c = c*fan + fan
		}
		t.dir[i] = keyAt(g.LeafMaxIndex(c))
	}
	return t
}

// Search returns the index of the leftmost record with the key, or -1.
func (t *RecordTree[K]) Search(key K) int {
	i := t.LowerBound(key)
	if i < t.n && t.keyAt(i) == key {
		return i
	}
	return -1
}

// LowerBound returns the smallest record index whose key is ≥ key, or n.
func (t *RecordTree[K]) LowerBound(key K) int {
	g := &t.g
	if g.Internal == 0 {
		return t.leafLowerBound(0, t.n, key)
	}
	m := g.M
	d := 0
	for d <= g.LNode {
		base := d * m
		j := lowerBoundG(t.dir[base:base+m], key)
		d = d*g.Fanout + 1 + j
	}
	lo, hi := g.LeafRange(d)
	return t.leafLowerBound(lo, hi, key)
}

// EqualRange returns [first,last) of record indexes whose key equals key.
func (t *RecordTree[K]) EqualRange(key K) (first, last int) {
	first = t.LowerBound(key)
	last = first
	for last < t.n && t.keyAt(last) == key {
		last++
	}
	return first, last
}

// leafLowerBound searches records [lo,hi) through the extractor.
func (t *RecordTree[K]) leafLowerBound(lo, hi int, key K) int {
	for hi-lo > 5 {
		mid := int(uint(lo+hi) >> 1)
		if t.keyAt(mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo < hi && t.keyAt(lo) < key {
		lo++
	}
	return lo
}

// Levels returns the node levels traversed per lookup, leaf included.
func (t *RecordTree[K]) Levels() int { return t.g.Levels() }
