// Quickstart: build a CSS-tree over a sorted array and search it.
//
// This is the paper's minimal usage: you already keep a sorted array (a
// record-identifier list sorted by an attribute, §2.2); a CSS-tree adds a
// small cache-conscious directory on top that makes lookups ~3× faster than
// binary search without disturbing the array.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"cssidx"
	"cssidx/internal/workload"
)

func main() {
	// One million sorted, distinct 4-byte keys — exactly the paper's setup.
	g := workload.New(42)
	keys := g.SortedUniform(1_000_000)

	// Build the index.  The node size should match your cache line; the
	// default (64 bytes = 16 keys per node) is right for almost every CPU.
	start := time.Now()
	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	fmt.Printf("built level CSS-tree over %d keys in %v (directory: %d bytes, %.2f%% of data)\n",
		len(keys), time.Since(start).Round(time.Microsecond),
		idx.SpaceBytes(), 100*float64(idx.SpaceBytes())/float64(4*len(keys)))

	// Point lookup: the result is the position in the sorted array, which
	// doubles as the RID in a sorted record-identifier list.
	probe := keys[123_456]
	pos := idx.Search(probe)
	fmt.Printf("Search(%d) = %d (expected 123456)\n", probe, pos)
	if pos != 123_456 {
		log.Fatal("unexpected position")
	}

	// Misses return -1.
	if got := idx.Search(probe + 1); got != -1 {
		log.Fatalf("expected miss, got %d", got)
	}
	fmt.Printf("Search(%d) = -1 (absent)\n", probe+1)

	// Range query: LowerBound gives the first position ≥ key, so a closed
	// range [lo,hi] is the slice [LowerBound(lo), LowerBound(hi+1)).
	lo, hi := keys[1000], keys[1010]
	first := idx.LowerBound(lo)
	last := idx.LowerBound(hi + 1)
	fmt.Printf("range [%d,%d] covers positions [%d,%d): %d keys\n", lo, hi, first, last, last-first)

	// Compare against plain binary search on the same array: same answers,
	// the directory only changes the speed.
	bin := cssidx.NewBinarySearch(keys)
	for _, k := range g.Lookups(keys, 10_000) {
		if bin.Search(k) != idx.Search(k) {
			log.Fatalf("divergence at key %d", k)
		}
	}
	fmt.Println("10000 random lookups agree with binary search")
}
