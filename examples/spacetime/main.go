// Spacetime: reproduce the paper's space/time trade-off (Figure 2/14) for a
// data size of your choosing, on your machine.
//
// Every method is built over the same sorted array and timed on the same
// random matching lookups; the output lists (space, time) points and marks
// the stepped frontier — the paper's conclusion made concrete: T-trees and
// B+-trees are dominated, and the frontier runs binary search → CSS-trees →
// hashing.
//
// Run: go run ./examples/spacetime [-n 2000000] [-lookups 100000]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"cssidx"
	"cssidx/internal/analytic"
	"cssidx/internal/bench"
	"cssidx/internal/mem"
	"cssidx/internal/workload"
)

func main() {
	n := flag.Int("n", 2_000_000, "number of keys")
	lookups := flag.Int("lookups", 100_000, "random matching lookups per timing")
	flag.Parse()

	g := workload.New(1)
	keys := g.SortedUniform(*n)
	probes := g.Lookups(keys, *lookups)

	var points []analytic.Point
	add := func(m analytic.Method, label string, idx cssidx.Index, extraSpace int) {
		t := bench.MeasureLookups(idx.Search, probes, 3)
		points = append(points, analytic.Point{
			Method: m, Label: label,
			Space: float64(idx.SpaceBytes() + extraSpace),
			Time:  t,
		})
	}

	add(analytic.BinarySearch, "", cssidx.NewBinarySearch(keys), 0)
	for _, nb := range []int{32, 64, 128, 256} {
		lbl := fmt.Sprintf("%dB node", nb)
		add(analytic.TTree, lbl, cssidx.NewTTree(keys, nb), 0)
		add(analytic.BPlusTree, lbl, cssidx.NewBPlusTree(keys, nb), 0)
		add(analytic.FullCSS, lbl, cssidx.NewFullCSS(keys, nb), 0)
		add(analytic.LevelCSS, lbl, cssidx.NewLevelCSS(keys, nb), 0)
	}
	for _, d := range []int{1 << 16, 1 << 18, 1 << 20} {
		// Hashing still needs the ordered RID list for ordered access: add n·R.
		add(analytic.Hash, fmt.Sprintf("dir 2^%d", mem.Log2(d)), cssidx.NewHash(keys, d), 4**n)
	}

	frontier := analytic.Frontier(points)
	mark := map[string]bool{}
	for _, p := range frontier {
		mark[p.Method.String()+p.Label] = true
	}

	fmt.Printf("space/time trade-off, n=%d, %d lookups (min of 3 runs)\n\n", *n, *lookups)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tconfig\tspace\ttime\t")
	for _, p := range points {
		star := ""
		if mark[p.Method.String()+p.Label] {
			star = "  *frontier"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.4fs\t%s\n",
			p.Method, p.Label, mem.Bytes(int64(p.Space)), p.Time, star)
	}
	tw.Flush()

	fmt.Println("\nstepped frontier (best time for a space budget):")
	for _, p := range frontier {
		fmt.Printf("  ≥ %-12s → %s %s (%.4fs)\n", mem.Bytes(int64(p.Space)), p.Method, p.Label, p.Time)
	}
}
