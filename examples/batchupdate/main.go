// Batchupdate: the OLAP maintenance cycle of §2.3 and §4.1.1 — queries run
// against a read-optimised index; updates arrive in batches; instead of
// maintaining the index incrementally, the system rebuilds it from scratch.
//
// The example demonstrates why that is the right trade in main memory: the
// rebuild of a multi-million-key CSS-tree takes milliseconds (Figure 9
// reports < 1 s for 25M keys even on 1998 hardware), while the resulting
// 100%-full, pointer-free structure answers lookups faster than any
// update-friendly alternative.
//
// Run: go run ./examples/batchupdate
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"cssidx"
	"cssidx/internal/workload"
)

func main() {
	g := workload.New(9)

	// Day 0: load 4M rows, build the index once.
	keys := g.SortedUniform(4_000_000)
	idx := rebuild(keys)

	// Serve queries.
	probes := g.Lookups(keys, 50_000)
	start := time.Now()
	hits := 0
	for _, k := range probes {
		if idx.Search(k) >= 0 {
			hits++
		}
	}
	fmt.Printf("day 0: %d/%d lookups hit in %v\n", hits, len(probes), time.Since(start).Round(time.Millisecond))

	// Nightly batches arrive: merge, re-sort, rebuild.  (With a sorted batch
	// this is a linear merge; rebuild cost is Figure 9's curve.)
	for day := 1; day <= 3; day++ {
		batch := g.SortedUniform(500_000)
		mergeStart := time.Now()
		keys = merge(keys, batch)
		mergeDur := time.Since(mergeStart)

		buildStart := time.Now()
		idx = rebuild(keys)
		buildDur := time.Since(buildStart)

		// Every batch key must be immediately visible.
		for _, k := range batch[:1000] {
			if idx.Search(k) < 0 {
				log.Fatalf("day %d: batch key %d invisible after rebuild", day, k)
			}
		}
		fmt.Printf("day %d: +%d rows → %d total; merge %v, index rebuild %v (%.1fM keys/s)\n",
			day, len(batch), len(keys),
			mergeDur.Round(time.Millisecond), buildDur.Round(time.Millisecond),
			float64(len(keys))/buildDur.Seconds()/1e6)
	}

	// The alternative the paper argues against: per-key incremental upkeep.
	// Simulate the cost of point inserts into a sorted array (memmove-heavy).
	single := append([]uint32(nil), keys[:1_000_000]...)
	insStart := time.Now()
	for i := 0; i < 2_000; i++ {
		k := uint32(i * 2147)
		pos := sort.Search(len(single), func(j int) bool { return single[j] >= k })
		single = append(single, 0)
		copy(single[pos+1:], single[pos:])
		single[pos] = k
	}
	perInsert := time.Since(insStart) / 2000
	fmt.Printf("\nfor contrast: a single in-place sorted insert costs ~%v — a full rebuild\n", perInsert)
	fmt.Println("amortises to less than that per batch row, and the structure stays 100% dense.")
}

// rebuild constructs a fresh level CSS-tree (the paper's recommended
// default) over the current sorted key array.
func rebuild(keys []uint32) cssidx.OrderedIndex {
	return cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
}

// merge merges two sorted uint32 slices.
func merge(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
