// Sharded: the §2.3 rebuild cycle as a concurrent serving layer.  A
// ShardedIndex range-partitions the key space, serves lock-free lookups
// from every CPU, and absorbs update batches in the background: each
// affected shard's CSS-tree is rebuilt from scratch and published with an
// epoch-swap, so readers never block and never see a half-updated
// structure.
//
// The example starts a pool of reader goroutines over a 2M-key index, then
// pushes "nightly" batches through the rebuilder while the readers keep
// serving, and finally cross-checks every answer against a single-threaded
// binary search over the final key set.
//
// Run: go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cssidx"
	"cssidx/internal/workload"
)

func main() {
	g := workload.New(11)
	keys := g.SortedUniform(2_000_000)

	idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[uint32]{Shards: 8})
	defer idx.Close()
	fmt.Printf("built sharded index: %d keys across %d shards\n", idx.Len(), idx.ShardCount())

	// Readers: hammer the index from every CPU while updates flow.
	probes := g.Lookups(keys, 100_000)
	stop := make(chan struct{})
	var served atomic.Int64
	var wg sync.WaitGroup
	readers := runtime.GOMAXPROCS(0)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := int64(0); ; n++ {
				select {
				case <-stop:
					served.Add(n)
					return
				default:
				}
				if idx.Search(probes[i%len(probes)]) < 0 {
					log.Fatal("present key not found")
				}
				i++
			}
		}(r * 8191)
	}

	// Writer: three "nights" of batch updates, absorbed by epoch-swaps
	// while the readers above keep running.
	all := append([]uint32(nil), keys...)
	for night := 1; night <= 3; night++ {
		batch := g.SortedUniform(200_000)
		start := time.Now()
		idx.Insert(batch...)
		idx.Sync()
		all = append(all, batch...)
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for _, k := range batch[:1000] {
			if idx.Search(k) < 0 {
				log.Fatalf("night %d: batch key invisible after Sync", night)
			}
		}
		fmt.Printf("night %d: +%d keys absorbed in %v while serving\n",
			night, len(batch), time.Since(start).Round(time.Millisecond))
	}
	close(stop)
	wg.Wait()

	swaps := uint64(0)
	for _, e := range idx.Epochs() {
		swaps += e - 1
	}
	fmt.Printf("served %d lookups concurrently with %d epoch swaps\n", served.Load(), swaps)

	// Cross-check the final state against plain binary search.
	check := g.Lookups(all, 20_000)
	bin := cssidx.NewBinarySearch(all)
	for _, k := range check {
		if idx.Search(k) != bin.Search(k) {
			log.Fatalf("sharded and binary search disagree on %d", k)
		}
	}
	lo, hi := all[len(all)/4], all[len(all)/2]
	count := 0
	idx.Ascend(lo, hi, func(pos int, key uint32) bool { count++; return true })
	want := bin.LowerBound(hi) - bin.LowerBound(lo)
	if count != want {
		log.Fatalf("range scan saw %d keys, binary search says %d", count, want)
	}
	fmt.Printf("lookups agree with binary search; range scan of %d keys agrees too\n", count)
}
