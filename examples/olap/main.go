// OLAP: decision-support queries over a small star schema in the mmdb
// column store — the workload that motivates the paper (§1, §2).
//
// A sales fact table references a products dimension.  Columns are
// domain-encoded (distinct values stored once, sorted, §2.1); selections and
// range predicates run through a CSS-tree-indexed sorted RID list; the join
// is the indexed nested-loop join the paper highlights as the main-memory
// join of choice (§2.2).
//
// Run: go run ./examples/olap
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cssidx"
	"cssidx/internal/mmdb"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Dimension: 1000 products with a price each.
	const nProducts = 1000
	productID := make([]uint32, nProducts)
	price := make([]uint32, nProducts)
	for i := range productID {
		productID[i] = uint32(1000 + i)
		price[i] = uint32(5 + rng.Intn(500))
	}
	products := mmdb.NewTable("products")
	must(products.AddColumn("id", productID))
	must(products.AddColumn("price", price))

	// Fact: 500k sales rows referencing products, with an amount.
	const nSales = 500_000
	soldProduct := make([]uint32, nSales)
	amount := make([]uint32, nSales)
	for i := range soldProduct {
		soldProduct[i] = productID[rng.Intn(nProducts)]
		amount[i] = uint32(1 + rng.Intn(20))
	}
	sales := mmdb.NewTable("sales")
	must(sales.AddColumn("product", soldProduct))
	must(sales.AddColumn("amount", amount))

	// Index the fact table's amount column with a level CSS-tree and the
	// dimension key with another.
	amountIx, err := sales.BuildIndex("amount", cssidx.KindLevelCSS, cssidx.Options{})
	must(err)
	idIx, err := products.BuildIndex("id", cssidx.KindLevelCSS, cssidx.Options{})
	must(err)

	// Q1 — point selection: sales with amount = 7.
	q1 := amountIx.SelectEqual(7)
	fmt.Printf("Q1: sales with amount = 7: %d rows\n", len(q1))

	// Q2 — range selection: sales with 15 ≤ amount ≤ 18 (ordered access via
	// the sorted RID list; hashing could not answer this, §3.5).
	q2, err := amountIx.CountRange(15, 18)
	must(err)
	fmt.Printf("Q2: sales with amount in [15,18]: %d rows\n", q2)

	// Q3 — indexed nested-loop join: total revenue = Σ amount × price over
	// sales ⋈ products.  Each fact row probes the dimension index once.
	amountCol, _ := sales.Column("amount")
	priceCol, _ := products.Column("price")
	var revenue uint64
	pairs, err := mmdb.Join(sales, "product", idIx, func(saleRID, productRID uint32) {
		revenue += uint64(amountCol.Value(int(saleRID))) * uint64(priceCol.Value(int(productRID)))
	})
	must(err)
	fmt.Printf("Q3: join produced %d pairs; total revenue %d\n", pairs, revenue)
	if pairs != nSales {
		log.Fatalf("every sale references exactly one product; got %d pairs", pairs)
	}

	// Q4 — the same range predicate through the domain: the paper's point
	// that inequality tests act directly on domain IDs.
	amountDom := amountCol.Domain()
	loID, hiID := amountDom.IDRange(15, 18)
	fmt.Printf("Q4: predicate 15 ≤ amount ≤ 18 becomes ID range [%d,%d) over a %d-value domain\n",
		loID, hiID, amountDom.Len())

	fmt.Printf("\nindex footprints: amount %d bytes, product id %d bytes (%d fact rows)\n",
		amountIx.SpaceBytes(), idIx.SpaceBytes(), sales.Rows())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
