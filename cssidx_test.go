package cssidx_test

import (
	"sort"
	"testing"

	"cssidx"
	"cssidx/internal/workload"
)

func refLowerBound(a []uint32, key uint32) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= key })
}

// buildAll constructs one index per kind over keys.
func buildAll(keys []cssidx.Key) map[cssidx.Kind]cssidx.Index {
	out := map[cssidx.Kind]cssidx.Index{}
	for _, k := range cssidx.Kinds() {
		out[k] = cssidx.New(k, keys, cssidx.Options{})
	}
	return out
}

// TestConformanceSearch drives the shared contract through every method:
// every present key resolves to its leftmost position, every absent key to
// -1, on distinct, duplicate-heavy, linear and skewed data sets.
func TestConformanceSearch(t *testing.T) {
	g := workload.New(100)
	datasets := map[string][]uint32{
		"distinct":   g.SortedDistinct(20000),
		"duplicates": g.SortedWithDuplicates(20000, 5),
		"linear":     g.SortedLinear(20000),
		"skewed":     g.SortedSkewed(20000),
	}
	for dsName, keys := range datasets {
		probes := g.Lookups(keys, 2000)
		misses := g.Misses(keys, 2000)
		for kind, idx := range buildAll(keys) {
			t.Run(dsName+"/"+kind.String(), func(t *testing.T) {
				for _, k := range probes {
					got := idx.Search(k)
					want := refLowerBound(keys, k)
					if got != want {
						t.Fatalf("Search(%d)=%d, want %d", k, got, want)
					}
				}
				for _, k := range misses {
					if got := idx.Search(k); got != -1 {
						t.Fatalf("absent key %d found at %d", k, got)
					}
				}
			})
		}
	}
}

// TestConformanceLowerBound checks LowerBound and EqualRange on every
// ordered method.
func TestConformanceLowerBound(t *testing.T) {
	g := workload.New(101)
	keys := g.SortedWithDuplicates(15000, 4)
	probes := append(g.Lookups(keys, 1500), g.Misses(keys, 1500)...)
	for kind, idx := range buildAll(keys) {
		ord, ok := idx.(cssidx.OrderedIndex)
		if !ok {
			if kind != cssidx.KindHash {
				t.Errorf("%v should be ordered", kind)
			}
			continue
		}
		t.Run(kind.String(), func(t *testing.T) {
			for _, k := range probes {
				want := refLowerBound(keys, k)
				if got := ord.LowerBound(k); got != want {
					t.Fatalf("LowerBound(%d)=%d, want %d", k, got, want)
				}
				f, l := ord.EqualRange(k)
				wantL := sort.Search(len(keys), func(i int) bool { return keys[i] > k })
				if f != want || l != wantL {
					t.Fatalf("EqualRange(%d)=[%d,%d), want [%d,%d)", k, f, l, want, wantL)
				}
			}
		})
	}
}

// TestConformanceEmptyAndTiny exercises the degenerate sizes on every method.
func TestConformanceEmptyAndTiny(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		keys := make([]cssidx.Key, n)
		for i := range keys {
			keys[i] = uint32(10 * (i + 1))
		}
		for kind, idx := range buildAll(keys) {
			for i, k := range keys {
				if got := idx.Search(k); got != i {
					t.Errorf("%v n=%d: Search(%d)=%d, want %d", kind, n, k, got, i)
				}
			}
			if got := idx.Search(5); got != -1 {
				t.Errorf("%v n=%d: Search(5)=%d", kind, n, got)
			}
		}
	}
}

func TestSpaceRanking(t *testing.T) {
	// Figure 7's ordering on real structures: binary/interp free; CSS
	// directories small; B+ larger; T-tree and hash largest.
	g := workload.New(102)
	keys := g.SortedDistinct(200000)
	idx := buildAll(keys)
	space := func(k cssidx.Kind) int { return idx[k].SpaceBytes() }

	if space(cssidx.KindBinarySearch) != 0 || space(cssidx.KindInterpolation) != 0 {
		t.Error("array searches must be zero-space")
	}
	if !(space(cssidx.KindFullCSS) < space(cssidx.KindLevelCSS)) {
		t.Errorf("full %d < level %d expected", space(cssidx.KindFullCSS), space(cssidx.KindLevelCSS))
	}
	if !(space(cssidx.KindLevelCSS) < space(cssidx.KindBPlusTree)) {
		t.Errorf("level %d < B+ %d expected", space(cssidx.KindLevelCSS), space(cssidx.KindBPlusTree))
	}
	if !(space(cssidx.KindBPlusTree) < space(cssidx.KindTTree)) {
		t.Errorf("B+ %d < T-tree %d expected", space(cssidx.KindBPlusTree), space(cssidx.KindTTree))
	}
	if !(space(cssidx.KindFullCSS)*4 < space(cssidx.KindHash)) {
		t.Errorf("hash %d should dwarf CSS %d", space(cssidx.KindHash), space(cssidx.KindFullCSS))
	}
}

func TestNodeBytesOption(t *testing.T) {
	g := workload.New(103)
	keys := g.SortedDistinct(50000)
	small := cssidx.New(cssidx.KindFullCSS, keys, cssidx.Options{NodeBytes: 32})
	big := cssidx.New(cssidx.KindFullCSS, keys, cssidx.Options{NodeBytes: 256})
	// Larger nodes → shallower tree → slightly smaller or similar directory;
	// both must stay correct.
	for _, k := range g.Lookups(keys, 500) {
		if small.Search(k) != big.Search(k) {
			t.Fatalf("node size changed answers for key %d", k)
		}
	}
}

func TestHashDirSizeOption(t *testing.T) {
	g := workload.New(104)
	keys := g.SortedDistinct(10000)
	idx := cssidx.New(cssidx.KindHash, keys, cssidx.Options{HashDirSize: 64})
	for _, k := range g.Lookups(keys, 500) {
		want := refLowerBound(keys, k)
		if got := idx.Search(k); got != want {
			t.Fatalf("Search(%d)=%d, want %d", k, got, want)
		}
	}
}

func TestDefaultHashDirSize(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 4}, {3, 4}, {4, 4}, {16, 4}, {64, 16}, {1 << 20, 1 << 18},
	}
	for _, c := range cases {
		if got := cssidx.DefaultHashDirSize(c.n); got != c.want {
			t.Errorf("DefaultHashDirSize(%d)=%d, want %d", c.n, got, c.want)
		}
	}
}

func TestKindStringsAndNames(t *testing.T) {
	g := workload.New(105)
	keys := g.SortedDistinct(100)
	for kind, idx := range buildAll(keys) {
		if kind.String() == "" || idx.Name() == "" {
			t.Errorf("kind %d unnamed", int(kind))
		}
		if kind.String() != idx.Name() {
			t.Errorf("kind name %q != index name %q", kind.String(), idx.Name())
		}
	}
}

func TestNewPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { cssidx.New(cssidx.Kind(99), nil, cssidx.Options{}) },
		func() { cssidx.NewFullCSS(nil, 5) },
		func() { cssidx.NewTTree(nil, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRangeQueryViaLowerBound(t *testing.T) {
	// The §2.2 usage: a range query on the indexed attribute becomes a
	// LowerBound pair over the sorted RID list.
	g := workload.New(106)
	keys := g.SortedDistinct(10000)
	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes).(interface {
		LowerBound(cssidx.Key) int
	})
	lo, hi := keys[2000], keys[7000]
	first := idx.LowerBound(lo)
	last := idx.LowerBound(hi + 1)
	if first != 2000 || last != 7001 {
		t.Fatalf("range [%d,%d] → positions [%d,%d), want [2000,7001)", lo, hi, first, last)
	}
}
