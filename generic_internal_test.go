package cssidx

import (
	"testing"

	"cssidx/internal/binsearch"
	"cssidx/internal/workload"
)

// TestGenericUint32KernelFastPath checks the uint32 fast path of the
// Generic batch descent — which routes through the dispatched node-search
// kernels — against the scalar generic descent, under every available tier
// and for both tree variants.
func TestGenericUint32KernelFastPath(t *testing.T) {
	prev := binsearch.ActiveKernel()
	defer binsearch.SetKernel(prev)
	g := workload.New(440)
	for _, kern := range []binsearch.Kernel{binsearch.KernelScalar, binsearch.KernelSWAR, binsearch.KernelSIMD} {
		if !binsearch.SetKernel(kern) {
			continue
		}
		for _, n := range []int{0, 1, 33, 5000, 80000} {
			keys := g.SortedWithDuplicates(n, 4)
			probes := append(g.Lookups(keys, 1500), g.Misses(keys, 500)...)
			probes = append(probes, 0, ^uint32(0), 7)
			for name, tr := range map[string]*Generic[uint32]{
				"full":  NewGenericFull(keys, 16),
				"level": NewGenericLevel(keys, 16),
			} {
				if tr.keysU32 == nil && n > 0 {
					t.Fatalf("%s: uint32 fast path not cached", name)
				}
				out := make([]int32, len(probes))
				tr.LowerBoundBatch(probes, out)
				first := make([]int32, len(probes))
				last := make([]int32, len(probes))
				tr.EqualRangeBatch(probes, first, last)
				sr := make([]int32, len(probes))
				tr.SearchBatch(probes, sr)
				for i, p := range probes {
					if int(out[i]) != tr.LowerBound(p) {
						t.Fatalf("%v %s n=%d: LowerBoundBatch[%d]=%d scalar=%d (key %d)", kern, name, n, i, out[i], tr.LowerBound(p), p)
					}
					f, l := tr.EqualRange(p)
					if int(first[i]) != f || int(last[i]) != l {
						t.Fatalf("%v %s n=%d: EqualRangeBatch[%d]=(%d,%d) scalar=(%d,%d)", kern, name, n, i, first[i], last[i], f, l)
					}
					if int(sr[i]) != tr.Search(p) {
						t.Fatalf("%v %s n=%d: SearchBatch[%d]=%d scalar=%d", kern, name, n, i, sr[i], tr.Search(p))
					}
				}
			}
		}
	}
}

// TestGenericNonUint32SkipsFastPath pins that other key widths keep the
// comparison descent (and still answer correctly).
func TestGenericNonUint32SkipsFastPath(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i) * 3
	}
	tr := NewGenericFull(keys, 8)
	if tr.keysU32 != nil {
		t.Fatal("uint64 tree cached a uint32 fast path")
	}
	probes := []uint64{0, 1, 2, 3, 1500, 2997, 5000}
	out := make([]int32, len(probes))
	tr.LowerBoundBatch(probes, out)
	for i, p := range probes {
		if int(out[i]) != tr.LowerBound(p) {
			t.Fatalf("batch[%d]=%d scalar=%d", i, out[i], tr.LowerBound(p))
		}
	}
}
