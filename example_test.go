package cssidx_test

import (
	"bytes"
	"fmt"

	"cssidx"
)

// The sorted array is the leaf level; Search returns positions in it.
func ExampleNewLevelCSS() {
	keys := []cssidx.Key{2, 3, 5, 8, 13, 21, 34}
	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	fmt.Println(idx.Search(13))
	fmt.Println(idx.Search(14))
	fmt.Println(idx.LowerBound(9))
	// Output:
	// 4
	// -1
	// 4
}

// EqualRange enumerates duplicates: the paper's §3.6 access pattern.
func ExampleOrderedIndex_equalRange() {
	keys := []cssidx.Key{1, 4, 4, 4, 7, 9}
	idx := cssidx.NewFullCSS(keys, cssidx.DefaultNodeBytes)
	first, last := idx.EqualRange(4)
	fmt.Println(first, last)
	// Output: 1 4
}

// New builds any of the paper's methods behind one interface.
func ExampleNew() {
	keys := []cssidx.Key{10, 20, 30, 40, 50}
	for _, kind := range []cssidx.Kind{cssidx.KindBinarySearch, cssidx.KindBPlusTree, cssidx.KindLevelCSS} {
		idx := cssidx.New(kind, keys, cssidx.Options{})
		fmt.Printf("%s: %d\n", idx.Name(), idx.Search(30))
	}
	// Output:
	// array binary search: 2
	// B+-tree: 2
	// level CSS-tree: 2
}

// Batched probing answers a whole probe batch with one lockstep descent;
// results are bit-identical to the scalar methods.  SortedBatch adds the
// sort-probes-first schedule for skewed streams (note the repeated 21s
// descend once).
func ExampleAsBatchOrdered() {
	keys := []cssidx.Key{2, 3, 5, 8, 13, 21, 34}
	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)

	probes := []cssidx.Key{13, 4, 21, 21, 21, 40}
	out := make([]int32, len(probes))
	cssidx.AsBatchOrdered(idx).SearchBatch(probes, out)
	fmt.Println(out)

	cssidx.NewSortedBatch(idx).LowerBoundBatch(probes, out)
	fmt.Println(out)
	// Output:
	// [4 -1 5 5 5 -1]
	// [4 2 5 5 5 7]
}

// Generic CSS-trees index any ordered key type.
func ExampleNewGenericFull() {
	words := []string{"ant", "bee", "cat", "dog"}
	tr := cssidx.NewGenericFull(words, 2)
	fmt.Println(tr.Search("cat"))
	fmt.Println(tr.LowerBound("bat"))
	// Output:
	// 2
	// 1
}

// RecordTree indexes records in place through a key extractor.
func ExampleNewRecordTree() {
	type row struct {
		ID   uint32
		Name string
	}
	rows := []row{{10, "x"}, {20, "y"}, {30, "z"}}
	tr := cssidx.NewRecordTree(len(rows), func(i int) uint32 { return rows[i].ID }, 16)
	i := tr.Search(20)
	fmt.Println(i, rows[i].Name)
	// Output: 1 y
}

// ShardedIndex serves lock-free concurrent lookups while batched updates
// are absorbed by background epoch-swap rebuilds.
func ExampleNewSharded() {
	keys := []cssidx.Key{2, 3, 5, 8, 13, 21, 34}
	idx := cssidx.NewSharded(keys, cssidx.ShardedOptions[cssidx.Key]{Shards: 2})
	defer idx.Close()
	fmt.Println(idx.Search(13))
	idx.Insert(14, 15)
	idx.Delete(2)
	idx.Sync() // wait for the epoch-swap
	fmt.Println(idx.Search(14))
	idx.Ascend(10, 20, func(pos int, key cssidx.Key) bool {
		fmt.Println(pos, key)
		return true
	})
	// Output:
	// 4
	// 4
	// 3 13
	// 4 14
	// 5 15
}

// Snapshots persist a built directory and re-attach it to the same array.
func ExampleSaveIndex() {
	keys := []cssidx.Key{1, 2, 3, 5, 8, 13}
	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	var buf bytes.Buffer
	if err := cssidx.SaveIndex(&buf, idx); err != nil {
		fmt.Println("save:", err)
		return
	}
	restored, err := cssidx.LoadIndex(&buf, keys)
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	fmt.Println(restored.Search(8))
	// Output: 4
}

// The parallel engine fans one large batch across workers; results are
// bit-identical to the scalar methods at every worker count.
func ExampleNewParallel() {
	keys := make([]cssidx.Key, 100000)
	for i := range keys {
		keys[i] = cssidx.Key(2 * i)
	}
	idx := cssidx.NewLevelCSS(keys, cssidx.DefaultNodeBytes)
	par := cssidx.NewParallel(idx, cssidx.ParallelOptions{}) // defaults: GOMAXPROCS workers

	probes := []cssidx.Key{0, 19998, 199998, 5}
	out := make([]int32, len(probes))
	par.SearchBatch(probes, out)
	fmt.Println(out)
	// Output: [0 9999 99999 -1]
}
